"""Kernel hot-path invariants: pooling, typed dispatch, interruption.

The optimized kernel recycles heap entries and Timeout objects so the
steady-state sleep/timeout path allocates nothing.  The determinism
contract is *ordering + integer time* — never allocation identity — so
these tests pin down the places where reuse could leak into semantics:
interrupt during a pooled sleep, combinators over pooled timeouts, and
the reference kernel dispatching the exact same event sequence.
"""

import pytest

from repro.sim import (AllOf, AnyOf, Interrupted, ReferenceSimulator, SimError,
                       Simulator, Timeout)


# ---------------------------------------------------------------- free lists
def test_timeout_free_list_recycles_identity():
    sim = Simulator()
    seen = []

    def proc():
        t1 = sim.timeout(5)
        seen.append(t1)
        yield t1
        # t1 was recycled the moment the wait consumed it: the next
        # timeout from the pool is the same object, re-armed
        t2 = sim.timeout(7)
        seen.append(t2)
        yield t2

    sim.run_process(proc())
    assert seen[0] is seen[1]
    assert sim.now == 12


def test_directly_constructed_timeout_is_never_pooled():
    sim = Simulator()

    def proc():
        t = Timeout(sim, 5)
        yield t
        assert t not in sim._timeout_pool

    sim.run_process(proc())
    assert sim.now == 5


def test_entry_pool_stays_bounded_in_steady_state():
    sim = Simulator()

    def sleeper():
        for _ in range(200):
            yield sim.timeout(3)

    sim.run_process(sleeper())
    assert sim.now == 600
    # 200 sleeps + wakeups cycle through a handful of pooled objects
    assert len(sim._entry_pool) <= 4
    assert len(sim._timeout_pool) <= 2


def test_sleep_is_the_timeout_alias():
    assert Simulator.sleep is Simulator.timeout
    sim = Simulator()

    def proc():
        yield sim.sleep(9)

    sim.run_process(proc())
    assert sim.now == 9


def test_negative_timeout_raises_on_both_pool_paths():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1)  # fresh-construction path
    sim._timeout_pool.append(Timeout(sim, 1))
    with pytest.raises(SimError):
        sim.timeout(-1)  # pool-hit path


# -------------------------------------------------------------- interruption
def test_interrupt_during_pooled_sleep():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1_000)
        except Interrupted as i:
            log.append(("interrupted", sim.now, i.cause))
        yield sim.timeout(5)  # the pool must still be usable afterwards
        log.append(("done", sim.now))

    p = sim.spawn(sleeper(), name="sleeper")

    def poker():
        yield sim.timeout(10)
        p.interrupt("poke")

    sim.spawn(poker(), name="poker")
    sim.run()
    assert log == [("interrupted", 10, "poke"), ("done", 15)]


def test_repeated_interrupts_do_not_grow_the_pools():
    sim = Simulator()
    hits = []

    def sleeper():
        for _ in range(50):
            try:
                yield sim.timeout(1_000)
            except Interrupted:
                hits.append(sim.now)

    p = sim.spawn(sleeper(), name="sleeper")

    def poker():
        for _ in range(50):
            yield sim.timeout(7)
            p.interrupt()

    sim.spawn(poker(), name="poker")
    sim.run()
    assert len(hits) == 50
    # Cancellation is lazy: each canceled far-future entry is recycled
    # into the pool when the heap reaches it, not dropped on the floor.
    n0 = len(sim._entry_pool)
    assert n0 >= 50
    assert all(e[2] is None and e[3] is None for e in sim._entry_pool)
    assert len(sim._timeout_pool) <= 2

    # Steady state: further scheduling reuses the pool instead of growing it.
    def more():
        for _ in range(100):
            yield sim.timeout(2)

    sim.run_process(more())
    assert len(sim._entry_pool) <= n0 + 2


def test_interrupt_while_waiting_on_event():
    sim = Simulator()
    ev = sim.event("ev")
    log = []

    def waiter():
        try:
            yield ev
        except Interrupted:
            log.append(("interrupted", sim.now))

    p = sim.spawn(waiter(), name="waiter")

    def poker():
        yield sim.timeout(4)
        p.interrupt()
        yield sim.timeout(4)
        ev.trigger("late")  # must not resume the dead waiter

    sim.spawn(poker(), name="poker")
    sim.run()
    assert log == [("interrupted", 4)]
    assert ev._waiters == []  # the interrupt unsubscribed the process


# -------------------------------------------------- combinators over the pool
def test_anyof_with_pooled_timeouts():
    sim = Simulator()

    def proc():
        idx, value = yield AnyOf(sim, [sim.timeout(50), sim.timeout(10, "t")])
        assert (idx, value) == (1, "t")
        assert sim.now == 10

    sim.run_process(proc())


def test_allof_with_pooled_timeouts():
    sim = Simulator()

    def proc():
        values = yield AllOf(sim, [sim.timeout(5, "a"), sim.timeout(12, "b")])
        assert values == ["a", "b"]
        assert sim.now == 12

    sim.run_process(proc())


def test_timeout_value_delivered_through_fast_path():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(3, "payload")
        assert got == "payload"
        got = yield sim.timeout(3)
        assert got is None

    sim.run_process(proc())


# ------------------------------------------------- optimized vs reference
def _workload(sim):
    """A mixed workload touching every resume path: sleeps, events,
    process joins, combinators, and an interrupt."""
    trace = []
    ev = sim.event("ev")

    def child():
        yield sim.timeout(5)
        ev.trigger("go")
        return "child-done"

    def waiter():
        value = yield ev
        trace.append((sim.now, "ev", value))
        try:
            yield sim.timeout(100)
        except Interrupted:
            trace.append((sim.now, "interrupted"))

    def main():
        c = sim.spawn(child(), name="child")
        w = sim.spawn(waiter(), name="waiter")
        result = yield c
        trace.append((sim.now, "joined", result))
        idx, _ = yield AnyOf(sim, [sim.timeout(30), sim.timeout(60)])
        trace.append((sim.now, "anyof", idx))
        w.interrupt()
        yield sim.timeout(1)
        trace.append((sim.now, "end"))

    sim.run_process(main(), name="main")
    return trace, sim.now, sim.events_dispatched


def test_reference_kernel_dispatches_identical_events():
    opt = _workload(Simulator())
    ref = _workload(ReferenceSimulator())
    assert opt == ref  # same trace, same final time, same event count


def test_two_optimized_runs_are_deterministic():
    assert _workload(Simulator()) == _workload(Simulator())
