"""Unit tests for ClusterConfig derived quantities and validation."""

import pytest

from repro.cluster import ClusterConfig


def test_default_config_is_valid():
    ClusterConfig().validate()


def test_lanai_instruction_time():
    cfg = ClusterConfig()
    # 37.5 MHz => 26.67 ns/instruction (Section 2)
    assert abs(cfg.lanai_instr_ns - 26.667) < 0.01
    assert cfg.lanai_ns(375) == round(375 * 1000 / 37.5)


def test_wire_time_matches_link_rate():
    cfg = ClusterConfig()
    # 1.2 Gb/s -> 150 MB/s -> 8192 B in ~54.6 us
    assert abs(cfg.wire_ns(8192) - 54_613) < 10


def test_sbus_rates_are_asymmetric():
    cfg = ClusterConfig()
    w = cfg.sbus_write_ns(8192) - cfg.sbus_dma_startup_ns
    r = cfg.sbus_read_ns(8192) - cfg.sbus_dma_startup_ns
    assert w > r  # writes to host memory are the slow direction (Figure 4)
    assert abs(w - 8192 * 1000 / 46.8) < 2


def test_pio_cost_line_granularity():
    cfg = ClusterConfig()
    assert cfg.pio_ns(1) == cfg.pio_line_ns
    assert cfg.pio_ns(64) == cfg.pio_line_ns
    assert cfg.pio_ns(65) == 2 * cfg.pio_line_ns


def test_with_returns_modified_copy():
    cfg = ClusterConfig()
    cfg2 = cfg.with_(endpoint_frames=96)
    assert cfg2.endpoint_frames == 96
    assert cfg.endpoint_frames == 8
    cfg2.validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(num_hosts=0),
        dict(mtu_bytes=8),
        dict(endpoint_frames=0),
        dict(endpoint_frames=256),  # exceeds 1 MB SRAM at 8 KB frames
        dict(recv_queue_depth=0),
        dict(user_credits=64, recv_queue_depth=32),
        dict(replacement_policy="fifo"),
        dict(packet_loss_prob=1.5),
        dict(channels_per_pair=0),
    ],
)
def test_validation_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        ClusterConfig(**kwargs).validate()


def test_frames_fit_in_sram():
    cfg = ClusterConfig(endpoint_frames=96)
    cfg.validate()  # 96 frames on the newer boards (Section 4.1)
    assert cfg.endpoint_frames * cfg.frame_bytes <= cfg.ni_sram_bytes


def test_credits_match_receive_queue_depth():
    cfg = ClusterConfig()
    # 32 credits because the request receive queue is 32 deep (§6.4)
    assert cfg.user_credits == cfg.recv_queue_depth == 32


def test_wrr_budget_matches_paper():
    cfg = ClusterConfig()
    assert cfg.wrr_max_msgs == 64
    assert cfg.wrr_max_ns == 4_000_000  # ~4 ms (Section 5.2)
