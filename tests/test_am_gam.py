"""Unit tests for the GAM baseline (first-generation Active Messages)."""

from repro.am.gam import GAM_WINDOW, GamCluster
from repro.cluster import ClusterConfig
from repro.sim import ms


def build(n=4, **kw):
    return GamCluster(ClusterConfig(num_hosts=n, **kw))


def test_request_reply_roundtrip():
    cluster = build()
    ge0, ge1 = cluster.node(0).endpoint, cluster.node(1).endpoint
    got, replies = [], []

    def handler(token, x):
        got.append(x)
        token.reply(lambda t: replies.append(True))

    def client(thr):
        yield from ge0.request(thr, 1, handler, 7)
        while not replies:
            yield from ge0.poll(thr)

    def server(thr):
        while not got:
            yield from ge1.poll(thr)
        for _ in range(20):
            yield from ge1.poll(thr)
            yield from thr.compute(1_000)

    cluster.node(1).spawn_thread(server)
    cluster.node(0).spawn_thread(client)
    cluster.run(until=ms(50))
    assert got == [7] and replies == [True]


def test_window_limits_outstanding():
    cluster = build()
    ge0, ge1 = cluster.node(0).endpoint, cluster.node(1).endpoint
    seen = []

    def handler(token, i):
        seen.append(i)

    def client(thr):
        for i in range(3 * GAM_WINDOW):
            yield from ge0.request(thr, 1, handler, i)
            assert ge0._window.get(1, 0) <= GAM_WINDOW
        while ge0._window.get(1, 0) > 0:
            yield from ge0.poll(thr)
            yield from thr.compute(1_000)

    def server(thr):
        while len(seen) < 3 * GAM_WINDOW:
            yield from ge1.poll(thr)

    cluster.node(1).spawn_thread(server)
    cluster.node(0).spawn_thread(client)
    cluster.run(until=ms(100))
    assert sorted(seen) == list(range(3 * GAM_WINDOW))
    assert ge0.stats.window_stalls > 0


def test_bulk_fragments_at_4k_and_reassembles():
    cluster = build()
    cfg = cluster.cfg
    ge0, ge1 = cluster.node(0).endpoint, cluster.node(1).endpoint
    done = []

    def handler(token):
        done.append(token.nbytes)

    nbytes = cfg.gam_mtu_bytes * 2 + 512  # 3 fragments

    def client(thr):
        yield from ge0.request(thr, 1, handler, nbytes=nbytes)
        while ge0._window.get(1, 0) > 0:
            yield from ge0.poll(thr)
            yield from thr.compute(2_000)

    def server(thr):
        while not done:
            yield from ge1.poll(thr)

    cluster.node(1).spawn_thread(server)
    cluster.node(0).spawn_thread(client)
    cluster.run(until=ms(100))
    assert done == [nbytes]
    assert ge0.stats.bulk_bytes_sent == nbytes


def test_gam_small_messages_cheaper_than_am():
    """GAM's per-message firmware budgets undercut AM-II's (Figure 3)."""
    cfg = ClusterConfig()
    gam_tx = cfg.gam_ni_send_instr + cfg.gam_ni_send_post_instr
    am_tx = cfg.ni_send_instr + cfg.ni_send_post_instr + cfg.ni_ack_proc_instr
    assert gam_tx < am_tx
    gam_rx = cfg.gam_ni_recv_instr + cfg.gam_ni_recv_post_instr
    am_rx = cfg.ni_recv_instr + cfg.ni_errcheck_instr + cfg.ni_ack_gen_instr
    assert gam_rx < am_rx
