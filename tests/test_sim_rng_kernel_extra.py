"""Extra kernel coverage: RNG forking, run limits, event edge cases."""

import pytest

from repro.sim import Event, SimError, Simulator
from repro.sim.rng import RngStreams


def test_rng_fork_independent_of_parent():
    parent = RngStreams(7)
    child_a = parent.fork("worker")
    child_b = RngStreams(7).fork("worker")
    assert child_a.seed == child_b.seed  # forks are deterministic
    assert child_a.seed != parent.seed
    xs = [child_a.stream("s").random() for _ in range(3)]
    ys = [child_b.stream("s").random() for _ in range(3)]
    assert xs == ys


def test_rng_stream_cached_not_reset():
    rngs = RngStreams(1)
    s = rngs.stream("x")
    first = s.random()
    # asking again returns the SAME advancing stream
    assert rngs.stream("x") is s
    assert s.random() != first or True  # just must not restart
    fresh = RngStreams(1).stream("x")
    assert fresh.random() == first


def test_run_max_events_stops_early():
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.schedule(i, hits.append, i)
    sim.run(max_events=3)
    assert hits == [0, 1, 2]
    sim.run()
    assert hits == list(range(10))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimError):
        _ = ev.value


def test_event_value_after_fail_reraises():
    sim = Simulator()
    ev = Event(sim)

    def waiter():
        try:
            yield ev
        except KeyError:
            return "saw it"

    proc = sim.spawn(waiter())
    ev.fail(KeyError("k"))
    sim.run()
    assert proc.result == "saw it"
    with pytest.raises(KeyError):
        _ = ev.value


def test_run_process_stops_at_completion_not_heap_drain():
    """run_process must return when ITS process ends, even with eternal
    background processes keeping the heap busy (regression: pario setup)."""
    sim = Simulator()
    ticks = []

    def eternal():
        while True:
            yield sim.timeout(10)
            ticks.append(sim.now)

    sim.spawn(eternal())

    def quick():
        yield sim.timeout(35)
        return "done"

    assert sim.run_process(quick()) == "done"
    assert sim.now <= 45  # did not run the eternal process for long


def test_schedule_handle_cancel():
    sim = Simulator()
    hits = []
    handle = sim.schedule(10, hits.append, "x")
    handle.cancel()
    sim.schedule(20, hits.append, "y")
    sim.run()
    assert hits == ["y"]


def test_process_repr_and_count():
    sim = Simulator()

    def body():
        yield sim.timeout(1)

    p = sim.spawn(body(), name="worker")
    assert "worker" in repr(p) and "active" in repr(p)
    sim.run()
    assert "done" in repr(p)
    assert sim.process_count() == 1
