"""Integration robustness tests: the §3.2/§5.1 delivery-and-error promises.

Exactly-once under loss/corruption/hot-swap, return-to-sender on crashes
and protection errors, channel self-synchronization after reboots — all
exercised end-to-end through the AM API on a multi-node cluster.
"""

import pytest

from repro.am import parallel_vnet
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms


def build(n=12, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def pump_pair(cluster, ep_src, ep_dst, count, handler, stop_when, until_ms=2_000, index=1):
    """Send `count` requests and run both a sender and a receiver thread."""
    sim = cluster.sim

    def sender(thr):
        for i in range(count):
            yield from ep_src.request(thr, index, handler, i)
            yield from ep_src.poll(thr, limit=4)
        while not stop_when():
            yield from ep_src.poll(thr)
            yield from thr.compute(5_000)

    def receiver(thr):
        while not stop_when():
            yield from ep_dst.poll(thr)
            yield from thr.compute(2_000)

    cluster.node(ep_dst.state.node).start_process().spawn_thread(receiver)
    cluster.node(ep_src.state.node).start_process().spawn_thread(sender)
    cluster.run(until=sim.now + ms(until_ms))


def test_exactly_once_under_packet_loss():
    cluster = build(packet_loss_prob=0.15, dead_timeout_ms=400.0)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 5]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []
    pump_pair(cluster, ep0, ep1, 100, lambda tok, i: got.append(i), lambda: len(got) >= 100)
    assert sorted(got) == list(range(100))          # all delivered
    assert len(got) == len(set(got))                # none duplicated
    assert cluster.node(0).nic.stats.retransmissions > 0


def test_exactly_once_under_corruption():
    cluster = build(packet_corrupt_prob=0.15, dead_timeout_ms=400.0)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 5]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []
    pump_pair(cluster, ep0, ep1, 60, lambda tok, i: got.append(i), lambda: len(got) >= 60)
    assert sorted(got) == list(range(60))
    assert len(got) == len(set(got))
    assert cluster.node(5).nic.stats.crc_drops > 0


def test_hot_swap_masked_from_application():
    """Reconfiguration is transparent (Section 3.2)."""
    cluster = build()
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 9]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []

    def swapper():
        yield sim.timeout(ms(2))
        cluster.faults.set_spine(0, up=False)
        yield sim.timeout(ms(5))
        cluster.faults.set_spine(0, up=True)
        yield sim.timeout(ms(3))
        cluster.faults.set_spine(2, up=False)

    sim.spawn(swapper())
    pump_pair(cluster, ep0, ep1, 200, lambda tok, i: got.append(i), lambda: len(got) >= 200)
    assert sorted(got) == list(range(200))
    assert len(got) == len(set(got))
    assert ep0.stats.undeliverable == 0


def test_node_crash_returns_messages_to_sender():
    cluster = build(dead_timeout_ms=15.0)
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 3]), "setup")
    ep0, _ = vnet[0], vnet[1]
    reasons = []
    ep0.undeliverable_handler = lambda msg, reason: reasons.append(reason)
    cluster.crash_node(3)

    def sender(thr):
        for i in range(5):
            yield from ep0.request(thr, 1, lambda t, i: None, i)
        while len(reasons) < 5:
            yield from ep0.poll(thr)
            yield from thr.compute(10_000)

    t = cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=sim.now + ms(500))
    assert t.finished
    assert reasons == ["timeout"] * 5
    assert ep0.credits_available(1) == cluster.cfg.user_credits  # credits refunded


def test_crashed_node_reboot_resynchronizes():
    """Flow-control channels self-synchronize after a reboot (§5.1)."""
    cluster = build(dead_timeout_ms=15.0)
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 3]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []
    # phase 1: normal traffic
    pump_pair(cluster, ep0, ep1, 20, lambda tok, i: got.append(i), lambda: len(got) >= 20, until_ms=500)
    assert len(got) == 20
    # phase 2: crash + reboot the receiver; its endpoint pages back in
    cluster.crash_node(3)
    cluster.run(until=sim.now + ms(50))
    cluster.reboot_node(3)
    got2 = []
    pump_pair(cluster, ep0, ep1, 20, lambda tok, i: got2.append(i), lambda: len(got2) >= 20, until_ms=1_000)
    assert sorted(got2) == list(range(20))
    assert len(got2) == len(set(got2))


def test_overcommit_eight_to_one_still_delivers():
    """16 endpoints through 8 frames: everything still lands exactly once."""
    cluster = build(n=17)
    sim = cluster.sim
    nodes = list(range(17))
    vnet = cluster.run_process(parallel_vnet(cluster, nodes), "setup")
    centre = vnet[0]
    got = []
    per_sender = 8

    def make_sender(ep, rank):
        def sender(thr):
            for i in range(per_sender):
                yield from ep.request(thr, 0, lambda t, r, i: got.append((r, i)), rank, i)
                yield from ep.poll(thr, limit=4)
            for _ in range(4000):
                yield from ep.poll(thr)
                yield from thr.compute(20_000)

        return sender

    def receiver(thr):
        while len(got) < 16 * per_sender:
            yield from centre.poll(thr, limit=16)
            yield from thr.compute(2_000)

    cluster.node(0).start_process().spawn_thread(receiver)
    for rank in range(1, 17):
        cluster.node(rank).start_process().spawn_thread(make_sender(vnet[rank], rank))
    cluster.run(until=sim.now + ms(3_000))
    assert len(got) == 16 * per_sender
    assert len(set(got)) == len(got)
    # the centre node really did page endpoints (its own is 1 of its 8)
    assert cluster.node(0).driver.stats.remaps >= 1


def test_loss_and_hotswap_combined_stress():
    cluster = build(packet_loss_prob=0.05, dead_timeout_ms=800.0)
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [1, 10]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []

    def chaos():
        for k in range(4):
            yield sim.timeout(ms(3))
            cluster.faults.set_spine(k % cluster.network.topology.num_spines, up=False)
            yield sim.timeout(ms(3))
            cluster.faults.set_spine(k % cluster.network.topology.num_spines, up=True)

    sim.spawn(chaos())
    pump_pair(cluster, ep0, ep1, 150, lambda tok, i: got.append(i), lambda: len(got) >= 150, until_ms=4_000)
    assert sorted(got) == list(range(150))
