"""Cross-layer integration scenarios exercising several subsystems at once."""

import pytest

from repro.am import NameService, parallel_vnet, star_vnet, new_endpoint
from repro.cluster import Cluster, ClusterConfig
from repro.lib.mpi import build_world
from repro.lib.rpc import RpcClient, RpcServer
from repro.sim import ms, us


def test_mpi_job_beside_client_server_service():
    """General-purpose use (Section 1): a parallel MPI job and a
    client/server service share the cluster, each in its own virtual
    network, without interfering with correctness."""
    cluster = Cluster(ClusterConfig(num_hosts=8))
    sim = cluster.sim

    # an MPI job on nodes 0-3
    world = cluster.run_process(build_world(cluster, [0, 1, 2, 3]), "mpi")
    mpi_result = {}

    def mpi_main(thr, comm):
        total = yield from comm.allreduce(thr, comm.rank + 1, lambda a, b: a + b, 8)
        yield from comm.barrier(thr)
        if comm.rank == 0:
            mpi_result["sum"] = total
        return None

    mpi_threads = world.spawn(mpi_main)

    # a client/server service on nodes 4-7 (server on 4)
    servers, clients = cluster.run_process(
        star_vnet(cluster, 4, [5, 6, 7], shared_server_ep=True), "svc"
    )
    sep = servers[0]
    served = [0]

    def handler(token, x):
        served[0] += 1

    stop = {"flag": False}

    def server(thr):
        while not stop["flag"]:
            n = yield from sep.poll(thr, limit=8)
            if n == 0:
                yield from sep.wait(thr, timeout_ns=ms(2))

    def make_client(cep):
        def client(thr):
            for i in range(40):
                yield from cep.request(thr, 0, handler, i)
                yield from cep.poll(thr, limit=4)
            while cep.credits_available(0) < cluster.cfg.user_credits:
                yield from cep.poll(thr)
                yield from thr.compute(us(2))

        return client

    cluster.node(4).start_process().spawn_thread(server)
    client_threads = [
        cluster.node(5 + i).start_process().spawn_thread(make_client(cep))
        for i, cep in enumerate(clients)
    ]
    cluster.run(until=sim.now + ms(2_000))
    stop["flag"] = True
    assert all(t.finished for t in mpi_threads)
    assert mpi_result["sum"] == 10
    assert all(t.finished for t in client_threads)
    assert served[0] == 120


def test_many_endpoints_one_process_share_one_nic():
    """One process may hold many endpoints (Section 3); all page through
    the same 8 frames alongside each other."""
    cluster = Cluster(ClusterConfig(num_hosts=2))
    sim = cluster.sim
    eps = []
    for _ in range(12):  # 12 endpoints on node 0, 8 frames
        ep = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "e")
        eps.append(ep)
    peer = cluster.run_process(new_endpoint(cluster.node(1), rngs=cluster.rngs), "p")
    for i, ep in enumerate(eps):
        ep.map(0, peer.name, peer.tag)
        peer.map(i, ep.name, ep.tag)
    got = []

    def handler(token, idx):
        got.append(idx)

    def sender(thr):
        for rnd in range(3):
            for i, ep in enumerate(eps):
                yield from ep.request(thr, 0, handler, i)
        for _ in range(4000):
            for ep in eps:
                yield from ep.poll(thr, limit=2)
            if len(got) >= 36:
                break
            yield from thr.compute(us(10))

    def receiver(thr):
        while len(got) < 36:
            yield from peer.poll(thr, limit=16)

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=sim.now + ms(2_000))
    assert len(got) == 36
    assert sorted(set(got)) == list(range(12))
    # paging really happened: more endpoints than frames
    assert cluster.node(0).driver.stats.evictions > 0


def test_rpc_over_paged_endpoints_under_load():
    """RPC keeps working while its endpoints are victimized by other
    endpoints' residency demands."""
    cluster = Cluster(ClusterConfig(num_hosts=3, endpoint_frames=2))
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "v")
    server = RpcServer(vnet[0])
    server.register("mul", lambda a, b: a * b)
    client = RpcClient(vnet[1], server_index=0)
    stop = {"flag": False}
    cluster.node(0).start_process().spawn_thread(lambda thr: server.serve_loop(thr, stop))

    # competing endpoints on node 0 churn the 2 frames
    churn_eps = []
    for _ in range(3):
        ep = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "c")
        churn_eps.append(ep)

    def churner():
        while not stop["flag"]:
            for ep in churn_eps:
                cluster.node(0).driver.request_remap(ep.state)
            yield sim.timeout(ms(2))

    sim.spawn(churner())

    def call_loop(thr):
        results = []
        for i in range(10):
            value = yield from client.call(thr, server, "mul", i, 3)
            results.append(value)
        stop["flag"] = True
        return results

    t = cluster.node(1).start_process().spawn_thread(call_loop)
    cluster.run(until=sim.now + ms(5_000))
    assert t.finished
    assert t.result == [i * 3 for i in range(10)]
    assert cluster.node(0).driver.stats.remaps > 2  # churn was real
