"""Unit tests for the application workloads (small configurations)."""

import pytest

from repro.apps.clientserver import CONFIG_NAMES, ContentionConfig, run_contention
from repro.apps.linpack import LinpackModel, linpack_gflops
from repro.apps.npb import MACHINES, NPB_SPECS, analytic_time, run_npb, valid_proc_counts
from repro.apps.timeshare import TimeshareConfig, run_timeshare


# --------------------------------------------------------------- contention
def test_contention_one_client_near_peak():
    r = run_contention(ContentionConfig(nclients=1, mode="one_vn", duration_ms=60, warmup_ms=40))
    assert 65_000 <= r.aggregate_msgs_s <= 80_000  # paper peak: 78K msg/s


def test_contention_proportional_share():
    r = run_contention(ContentionConfig(nclients=3, mode="one_vn", duration_ms=60, warmup_ms=40))
    mean = r.aggregate_msgs_s / 3
    for per in r.per_client_msgs_s:
        assert abs(per - mean) / mean < 0.15  # proportional (Figure 6a)


def test_contention_bad_mode_rejected():
    with pytest.raises(ValueError):
        run_contention(ContentionConfig(nclients=1, mode="nope"))


def test_contention_config_builds_cluster_size():
    ccfg = ContentionConfig(nclients=5, frames=96)
    cc = ccfg.cluster_config()
    assert cc.num_hosts == 6
    assert cc.endpoint_frames == 96


def test_contention_result_min_max():
    from repro.apps.clientserver import ContentionResult

    r = ContentionResult(config=None, per_client_msgs_s=[1.0, 3.0, 2.0])
    assert r.min_client_msgs_s == 1.0
    assert r.max_client_msgs_s == 3.0
    assert ContentionResult(config=None).min_client_msgs_s == 0.0


# ---------------------------------------------------------------------- NPB
def test_npb_proc_count_validity():
    assert valid_proc_counts("bt", 36) == [1, 4, 9, 16, 25, 36]
    assert valid_proc_counts("ft", 32) == [1, 2, 4, 8, 16, 32]
    with pytest.raises(ValueError):
        run_npb("bt", 8)  # not a square


def test_npb_single_proc_is_baseline():
    r = run_npb("cg", 1)
    assert r.speedup == 1.0
    assert r.comm_fraction == 0.0
    assert r.time_s == NPB_SPECS["cg"].t1_seconds


def test_npb_cg_scales():
    r = run_npb("cg", 4)
    assert 3.0 <= r.speedup <= 5.5
    assert 0.0 < r.comm_fraction < 0.3


def test_npb_ep_nearly_ideal():
    r = run_npb("ep", 8)
    assert 7.5 <= r.speedup <= 8.5


def test_npb_analytic_machines_ordering():
    """Origin nodes are fastest; NOW scales better than the SP-2."""
    for name in ("cg", "mg"):
        t_now = analytic_time(name, 16, MACHINES["now"])
        t_sp2 = analytic_time(name, 16, MACHINES["sp2"])
        t_org = analytic_time(name, 16, MACHINES["origin2000"])
        assert t_org < t_now  # faster machine
        s_now = analytic_time(name, 1, MACHINES["now"]) / t_now
        s_sp2 = analytic_time(name, 1, MACHINES["sp2"]) / t_sp2
        assert s_now > s_sp2  # better scalability (Figure 5)


def test_npb_volume_models_positive():
    for name, spec in NPB_SPECS.items():
        per_rank, msgs, bisection = spec.volume(16)
        assert per_rank >= 0 and msgs >= 0 and bisection >= 0
        assert spec.volume(1) == (0.0, 0.0, 0.0)


# ------------------------------------------------------------------ Linpack
def test_linpack_near_paper_value():
    gf = linpack_gflops()
    assert 9.0 <= gf <= 11.5  # paper: 10.14 GF


def test_linpack_scales_with_nodes():
    assert linpack_gflops(25) < linpack_gflops(100)


def test_linpack_grid_factorization():
    assert LinpackModel(nodes=100).grid() == (10, 10)
    assert LinpackModel(nodes=32).grid() == (4, 8)


# ---------------------------------------------------------------- timeshare
def test_timeshare_small_config():
    r = run_timeshare(TimeshareConfig(nnodes=4, napps=2, iterations=8))
    # time-shared execution is within a modest factor of sequential
    assert 0.8 <= r.slowdown <= 1.3
    # communication time stays nearly constant (Section 6.3)
    assert 0.7 <= r.comm_ratio <= 1.5
