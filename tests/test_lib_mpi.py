"""Unit tests for the mini-MPI layer on Active Messages."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.lib.mpi import ANY, build_world
from repro.sim import ms


def run_mpi(nranks, main, until_ms=3_000, **cfg_kw):
    cluster = Cluster(ClusterConfig(num_hosts=max(2, nranks), **cfg_kw))
    world = cluster.run_process(build_world(cluster, list(range(nranks))), "mpi")
    threads = world.spawn(main)
    cluster.run(until=cluster.sim.now + ms(until_ms))
    for t in threads:
        assert t.finished, f"{t.name} did not finish"
    return world, [t.result for t in threads]


def test_send_recv_pingpong():
    def main(thr, comm):
        if comm.rank == 0:
            yield from comm.send(thr, 1, "ping", 16, payload="hello")
            src, tag, payload, nbytes = yield from comm.recv(thr, 1, "pong")
            return payload
        src, tag, payload, nbytes = yield from comm.recv(thr, 0, "ping")
        assert payload == "hello" and nbytes == 16
        yield from comm.send(thr, 0, "pong", 16, payload="world")
        return payload

    _, results = run_mpi(2, main)
    assert results == ["world", "hello"]


def test_recv_wildcards_and_ordering():
    def main(thr, comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(thr, 1, "data", 8, payload=i)
            return None
        got = []
        for _ in range(5):
            _, _, payload, _ = yield from comm.recv(thr, ANY, ANY)
            got.append(payload)
        return got

    _, results = run_mpi(2, main)
    assert results[1] == [0, 1, 2, 3, 4]  # per-pair FIFO at the library


def test_recv_tag_selectivity():
    def main(thr, comm):
        if comm.rank == 0:
            yield from comm.send(thr, 1, "b", 8, payload="second")
            yield from comm.send(thr, 1, "a", 8, payload="first")
            return None
        _, _, p1, _ = yield from comm.recv(thr, 0, "a")
        _, _, p2, _ = yield from comm.recv(thr, 0, "b")
        return (p1, p2)

    _, results = run_mpi(2, main)
    assert results[1] == ("first", "second")


@pytest.mark.parametrize("nranks", [2, 3, 4, 7])
def test_barrier_synchronizes(nranks):
    arrivals = {}

    def main(thr, comm):
        # stagger arrival
        yield from thr.sleep(comm.rank * 1_000_000)
        yield from comm.barrier(thr)
        arrivals[comm.rank] = comm.world.sim.now
        return None

    run_mpi(nranks, main)
    times = [arrivals[r] for r in range(nranks)]
    # nobody leaves the barrier before the last rank arrived (~(n-1) ms in)
    assert min(times) >= (nranks - 1) * 1_000_000


@pytest.mark.parametrize("nranks,root", [(4, 0), (4, 2), (5, 1)])
def test_bcast(nranks, root):
    def main(thr, comm):
        payload = "tree" if comm.rank == root else None
        result = yield from comm.bcast(thr, root, 1024, payload)
        return result

    _, results = run_mpi(nranks, main)
    assert results == ["tree"] * nranks


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_reduce_sum(nranks):
    def main(thr, comm):
        result = yield from comm.reduce(thr, 0, comm.rank + 1, lambda a, b: a + b, 8)
        return result

    _, results = run_mpi(nranks, main)
    assert results[0] == nranks * (nranks + 1) // 2
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("nranks", [2, 3, 4, 8])
def test_allreduce_max(nranks):
    def main(thr, comm):
        result = yield from comm.allreduce(thr, comm.rank * 10, max, 8)
        return result

    _, results = run_mpi(nranks, main)
    assert results == [(nranks - 1) * 10] * nranks


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_allgather(nranks):
    def main(thr, comm):
        result = yield from comm.allgather(thr, f"r{comm.rank}", 64)
        return result

    _, results = run_mpi(nranks, main)
    expected = [f"r{i}" for i in range(nranks)]
    assert all(r == expected for r in results)


@pytest.mark.parametrize("nranks", [2, 4])
def test_alltoall(nranks):
    def main(thr, comm):
        values = [(comm.rank, dst) for dst in range(comm.size)]
        result = yield from comm.alltoall(thr, values, 256)
        return result

    _, results = run_mpi(nranks, main)
    for rank, r in enumerate(results):
        assert r == [(src, rank) for src in range(nranks)]


def test_gather():
    def main(thr, comm):
        result = yield from comm.gather(thr, 0, comm.rank ** 2, 8)
        return result

    _, results = run_mpi(4, main)
    assert results[0] == [0, 1, 4, 9]


def test_send_bad_rank_raises():
    def main(thr, comm):
        try:
            yield from comm.send(thr, 99, "x", 8)
        except ValueError:
            return "raised"

    _, results = run_mpi(2, main)
    assert results[0] == "raised"


def test_comm_time_accounted():
    def main(thr, comm):
        yield from comm.barrier(thr)
        return comm.comm_ns

    world, results = run_mpi(4, main)
    assert all(r > 0 for r in results)
    assert world.total_comm_ns() == sum(results)


def test_large_message_fragments():
    nbytes = 3 * 8192 + 10

    def main(thr, comm):
        if comm.rank == 0:
            yield from comm.send(thr, 1, "big", nbytes)
            return None
        _, _, _, got = yield from comm.recv(thr, 0, "big")
        return got

    _, results = run_mpi(2, main)
    # the receiver sees the reassembled full size
    assert results[1] == nbytes
