"""Tests for the future-work extensions the paper's conclusions propose:
RTT-estimated retransmission scheduling and piggybacked acknowledgments.
"""

from repro.am import parallel_vnet
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms


def run_stream(cluster, count=200, until_ms=2_000):
    """One-way request stream between nodes 0 and 1; returns handled count."""
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(count):
            yield from ep0.request(thr, 1, handler, i)
            yield from ep0.poll(thr, limit=4)
        while ep0.credits_available(1) < cluster.cfg.user_credits:
            yield from ep0.poll(thr)
            yield from thr.compute(2_000)

    def receiver(thr):
        while len(got) < count:
            yield from ep1.poll(thr, limit=8)

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=sim.now + ms(until_ms))
    return got, ep0, ep1


# --------------------------------------------------------- RTT estimation
def test_rtt_estimation_builds_estimate_and_preserves_delivery():
    cluster = Cluster(ClusterConfig(num_hosts=4, enable_rtt_estimation=True))
    got, ep0, _ = run_stream(cluster, count=150)
    assert sorted(got) == list(range(150))
    nic0 = cluster.node(0).nic
    assert 1 in nic0._rtt                        # estimator populated
    srtt, rttvar = nic0._rtt[1]
    assert 5_000 < srtt < 500_000                # a sane small-message RTT
    # adaptive timeout respects its floor and ceiling
    rto = nic0._adaptive_timeout_ns(1)
    assert rto >= cluster.cfg.rtt_min_timeout_us * 1_000
    assert rto <= cluster.cfg.retrans_timeout_us * 1_000 * 2


def test_rtt_estimation_recovers_losses_faster():
    """Adaptive timeouts retransmit lost packets much sooner than the
    conservative static timer (the point of the proposed extension)."""

    def loss_run(enable):
        cluster = Cluster(
            ClusterConfig(
                num_hosts=4, packet_loss_prob=0.2, dead_timeout_ms=800.0,
                enable_rtt_estimation=enable, seed=7,
            )
        )
        sim = cluster.sim
        vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "s")
        ep0, ep1 = vnet[0], vnet[1]
        got = []
        done_at = {}

        def handler(token, i):
            got.append(i)
            if len(got) == 60:
                done_at["t"] = sim.now

        def sender(thr):
            for i in range(60):
                yield from ep0.request(thr, 1, handler, i)
                yield from ep0.poll(thr, limit=4)
            while "t" not in done_at:
                yield from ep0.poll(thr)
                yield from thr.compute(5_000)

        def receiver(thr):
            while len(got) < 60:
                yield from ep1.poll(thr, limit=8)

        t0 = sim.now
        cluster.node(1).start_process().spawn_thread(receiver)
        cluster.node(0).start_process().spawn_thread(sender)
        cluster.run(until=sim.now + ms(6_000))
        assert sorted(got) == list(range(60))
        return done_at["t"] - t0

    static_ns = loss_run(False)
    adaptive_ns = loss_run(True)
    # adaptive timers recover losses in ~hundreds of us instead of ~10 ms
    assert adaptive_ns < static_ns * 0.8


def test_rtt_estimation_no_spurious_duplicates_when_clean():
    cluster = Cluster(ClusterConfig(num_hosts=4, enable_rtt_estimation=True))
    got, _, _ = run_stream(cluster, count=200)
    assert len(got) == len(set(got)) == 200
    # adaptive timers must not duplicate healthy traffic (retransmissions
    # during cold-start residency NACKing are expected and are not dups)
    assert cluster.node(1).nic.stats.dup_reacks <= 2


# --------------------------------------------------------- piggyback acks
def test_piggyback_reduces_explicit_acks():
    """Request+reply traffic gives acks rides both ways."""

    def count_acks(enable):
        cluster = Cluster(ClusterConfig(num_hosts=4, enable_piggyback_acks=enable))
        sim = cluster.sim
        vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "s")
        ep0, ep1 = vnet[0], vnet[1]
        replies = [0]

        def handler(token, i):
            token.reply(lambda t: None)

        def client(thr):
            for i in range(150):
                yield from ep0.request(thr, 1, handler, i)
                yield from ep0.poll(thr, limit=4)
            while ep0.credits_available(1) < cluster.cfg.user_credits:
                yield from ep0.poll(thr)
                yield from thr.compute(2_000)

        def server(thr):
            while ep1.stats.requests_handled < 150:
                yield from ep1.poll(thr, limit=8)

        cluster.node(1).start_process().spawn_thread(server)
        cluster.node(0).start_process().spawn_thread(client)
        cluster.run(until=sim.now + ms(2_000))
        assert ep1.stats.requests_handled == 150
        return cluster.node(0).nic.stats.acks_sent + cluster.node(1).nic.stats.acks_sent

    without = count_acks(False)
    with_pb = count_acks(True)
    assert with_pb < without * 0.7  # most acks caught rides


def test_piggyback_preserves_exactly_once_under_loss():
    cluster = Cluster(
        ClusterConfig(
            num_hosts=4, enable_piggyback_acks=True,
            packet_loss_prob=0.15, dead_timeout_ms=800.0,
        )
    )
    got, _, _ = run_stream(cluster, count=80, until_ms=6_000)
    assert sorted(got) == list(range(80))
    assert len(got) == len(set(got))


def test_both_extensions_together():
    cluster = Cluster(
        ClusterConfig(
            num_hosts=4, enable_piggyback_acks=True, enable_rtt_estimation=True,
        )
    )
    got, _, _ = run_stream(cluster, count=120)
    assert sorted(got) == list(range(120))
