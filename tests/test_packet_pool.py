"""Packet-shell pooling stays allocation-free in protocol steady state.

The DESIGN §11 follow-up: with piggyback acks enabled, the deferred
acknowledgment is carried by a pre-built pooled ``Packet`` shell —
recycled on the spot when it rides a data packet, sent as-is when the
deadline flushes it.  Under a ping-pong burst the protocol reaches a
steady state where every shell comes from the free list: after a short
warmup, ``pool_stats()['misses']`` must not grow at all.
"""

import pytest

from repro.am.vnet import parallel_vnet
from repro.chaos import reset_global_ids
from repro.cluster.builder import Cluster
from repro.cluster.config import ClusterConfig
from repro.myrinet.packet import Packet, PacketType, pool_stats, reset_pool_stats
from repro.sim.core import ms


def _pingpong(cluster, rounds):
    """Drive ``rounds`` request/reply cycles; returns when done."""
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    done = []

    def receiver(thr):
        while not done:
            yield from ep1.poll(thr, limit=8)

    def sender(thr):
        for _ in range(rounds):
            yield from ep0.request(thr, 1, None, nbytes=16)
            while True:
                got = yield from ep0.poll(thr, limit=4)
                if got:
                    break
        done.append(1)

    cluster.node(1).start_process("r").spawn_thread(receiver)
    cluster.node(0).start_process("s").spawn_thread(sender)
    sim.run(until=sim.now + ms(10_000), stop=lambda: bool(done))
    assert done, "ping-pong burst did not finish"


def test_piggyback_pingpong_steady_state_allocates_nothing():
    reset_global_ids()
    cluster = Cluster(ClusterConfig(num_hosts=4, enable_piggyback_acks=True))
    _pingpong(cluster, 40)  # warmup: primes the shell pool
    reset_pool_stats()
    _pingpong(cluster, 120)
    stats = pool_stats()
    assert stats["misses"] == 0, (
        f"steady-state burst constructed fresh shells: {stats}")
    # the deferred-ack path really engaged the pool in both directions
    assert stats["hits"] > 0
    assert stats["recycled"] >= stats["hits"]


def test_explicit_ack_path_also_pools():
    # piggybacking off: every delivery sends an explicit pooled ACK
    reset_global_ids()
    cluster = Cluster(ClusterConfig(num_hosts=4, enable_piggyback_acks=False))
    _pingpong(cluster, 30)
    reset_pool_stats()
    _pingpong(cluster, 60)
    stats = pool_stats()
    assert stats["misses"] == 0, stats
    assert stats["hits"] > 0


def test_recycled_shell_is_observationally_fresh():
    p = Packet.alloc(0, 1, PacketType.ACK, msg_id=7, channel=3)
    old_xmit = p.xmit_id
    p.recycle()
    before = pool_stats()["hits"]
    q = Packet.alloc(2, 3, PacketType.NACK)
    assert q is p  # LIFO free list: the shell just recycled comes back
    assert q.msg_id == 0 and q.channel == 0 and q.piggyback_ack is None
    assert q.xmit_id > old_xmit  # fresh transmission identity
    assert pool_stats()["hits"] == before + 1
