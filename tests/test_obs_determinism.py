"""The observer-only invariant: tracing never perturbs the simulation.

Every instrumentation site is guarded by ``if sim.trace.enabled:`` and
``TraceBus.emit`` only appends records and bumps counters — it never
advances simulated time, reads an RNG stream, or schedules a callback.
This file locks that in end-to-end: a contended 4-node workload run
twice with tracing off and twice with tracing on must produce identical
final simulated times, event counts, and message logs.

The same run doubles as the Chrome trace_event acceptance check: the
trace exported from the traced run must be valid JSON in the format
chrome://tracing and Perfetto consume.
"""

import json

from repro.am import parallel_vnet
from repro.cluster import Cluster, ClusterConfig
from repro.obs import to_chrome_trace, write_chrome_trace
from repro.sim import ms, us

NCLIENTS = 3
MSGS_PER_CLIENT = 20


def _contended_run(trace: bool):
    """4 nodes, 3 clients hammering one server under 2% loss.

    Returns ``(fingerprint, bus)`` where the fingerprint captures final
    simulated time, per-layer event counts, and the full ordered
    delivery log — everything that could reveal a perturbation.
    """
    cfg = ClusterConfig(num_hosts=4, seed=11, packet_loss_prob=0.02)
    cluster = Cluster(cfg)
    bus = cluster.enable_tracing() if trace else None
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1, 2, 3]), "setup")
    sim = cluster.sim
    deliveries: list[tuple[int, int, int]] = []
    total = NCLIENTS * MSGS_PER_CLIENT

    def handler(token, who, k):
        deliveries.append((sim.now, who, k))

    def make_client(rank):
        ep = vnet[rank]

        def client(thr):
            for k in range(MSGS_PER_CLIENT):
                yield from ep.request(thr, 0, handler, rank, k)
                yield from ep.poll(thr, limit=4)
            while ep._outstanding:
                yield from ep.poll(thr, limit=8)
                yield from thr.compute(us(5))

        return client

    def server(thr):
        while len(deliveries) < total:
            yield from vnet[0].poll(thr, limit=8)
            yield from thr.compute(us(2))

    cluster.node(0).start_process().spawn_thread(server)
    for rank in range(1, NCLIENTS + 1):
        cluster.node(rank).start_process().spawn_thread(make_client(rank))
    sim.run(until=sim.now + ms(5_000), stop=lambda: len(deliveries) >= total)
    assert len(deliveries) == total, "workload did not complete"

    net = cluster.network.stats
    fingerprint = (
        sim.now,
        tuple(deliveries),
        (net.sent, net.delivered, net.dropped_loss, net.bytes_delivered),
        tuple(
            (n.nic.stats.data_sent, n.nic.stats.retransmissions,
             n.nic.stats.deliveries)
            for n in cluster.nodes
        ),
    )
    return fingerprint, bus


def test_tracing_on_equals_tracing_off_bit_for_bit():
    off1, _ = _contended_run(trace=False)
    off2, _ = _contended_run(trace=False)
    on1, _ = _contended_run(trace=True)
    on2, _ = _contended_run(trace=True)
    assert off1 == off2  # the run is deterministic at all...
    assert on1 == on2  # ...with or without the bus attached...
    assert off1 == on1  # ...and the bus changes nothing (observer-only)


def test_chrome_trace_export_from_contended_run_is_valid(tmp_path):
    _, bus = _contended_run(trace=True)
    assert bus is not None and len(bus) > 0

    path = write_chrome_trace(bus, str(tmp_path / "trace.json"), label="contended")
    with open(path) as fh:
        doc = json.load(fh)  # round-trips as real JSON

    assert doc == to_chrome_trace(bus, label="contended")
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    assert doc["otherData"]["sim_now_ns"] == bus.sim.now

    meta = [e for e in events if e["ph"] == "M"]
    payload = [e for e in events if e["ph"] != "M"]
    assert payload, "no payload events"
    # all 4 nodes show up as processes with named threads
    proc_names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert {"node0", "node1", "node2", "node3"} <= proc_names
    assert any(e["name"] == "thread_name" for e in meta)

    for e in payload:
        assert e["ph"] in ("i", "X")
        assert isinstance(e["name"], str) and e["name"]
        assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        if e["ph"] == "X":
            assert e["dur"] >= 0

    # instants come out in simulated-time order (slices back-date their ts)
    instant_ts = [e["ts"] for e in payload if e["ph"] == "i"]
    assert instant_ts == sorted(instant_ts)

    # the transport actually got traced
    names = {e["name"] for e in payload}
    assert {"pkt.tx", "net.deliver", "msg.deliver", "ack.rx"} <= names


def test_trace_metrics_aggregate_the_same_run():
    _, bus = _contended_run(trace=True)
    counts = bus.counts()
    # every delivered message produced one msg.deliver event
    assert counts["msg.deliver"] >= NCLIENTS * MSGS_PER_CLIENT
    # the counter registry agrees with the raw event log
    from repro.obs import metrics_snapshot

    snap = metrics_snapshot(bus)
    total_tx = sum(v for k, v in snap.items() if k.startswith("events.pkt.tx{"))
    assert total_tx == counts["pkt.tx"]
