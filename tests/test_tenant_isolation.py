"""Tenant-layer enforcement edges: quotas, vetoes, weights, storms.

Four enforcement behaviours the interference bench exercises end-to-end
are pinned here at the unit level, plus a seeded storm-interference
regression that must replay bit-exactly (the failure message carries
everything needed to reproduce a divergence).
"""

import pytest

from repro.chaos.invariants import IsolationSLO, check_isolation
from repro.chaos.runner import run_chaos
from repro.cluster import Cluster, ClusterConfig
from repro.myrinet import Network
from repro.nic import DriverOp, EndpointState, Message, MsgKind, Nic
from repro.sim import Event, Simulator, ms, us
from repro.tenant import Tenant, TenantRegistry, TenantSpec, TokenBucket
from repro.tenant.bench import _storm_scenario
from repro.tenant.interference import InterferenceWorkload


# ---------------------------------------------------------------- helpers
def build_nics(n=2, **kw):
    cfg = ClusterConfig(num_hosts=n, **kw)
    sim = Simulator()
    net = Network(sim, cfg)
    nics = [Nic(sim, cfg, i, net) for i in range(n)]
    return sim, cfg, net, nics


def add_ep(sim, nic, cfg, ep_id, tag, frame=0):
    ep = EndpointState(nic.nic_id, ep_id, send_ring_depth=cfg.send_ring_depth,
                       recv_queue_depth=cfg.recv_queue_depth, tag=tag)
    nic.driver_request(DriverOp("alloc", ep, Event(sim)))
    nic.driver_request(DriverOp("load", ep, Event(sim), frame=frame))
    return ep


def mk(src, dst, key, nbytes=16):
    return Message(src_node=src[0], src_ep=src[1], dst_node=dst[0],
                   dst_ep=dst[1], key=key, kind=MsgKind.REQUEST,
                   payload_bytes=nbytes)


# ------------------------------------------------------------- spec/bucket
def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec(name="").validate()
    with pytest.raises(ValueError):
        TenantSpec(name="t", weight=0).validate()
    with pytest.raises(ValueError):
        TenantSpec(name="t", frame_quota=1, frame_reservation=2).validate()
    with pytest.raises(ValueError):
        TenantSpec(name="t", rate_msgs_per_s=0).validate()
    TenantSpec(name="t", weight=4, frame_reservation=1,
               frame_quota=2, rate_msgs_per_s=1e4).validate()


def test_token_bucket_is_deterministic_and_integer():
    b = TokenBucket(rate_msgs_per_s=1e6, burst_msgs=2)  # 1000 ns/token
    assert b.interval_ns == 1000
    # starts full: two tokens back to back
    assert b.try_take(0) and b.try_take(0)
    assert not b.try_take(0)
    assert b.ready_at(0) == 1000
    # refills strictly from the simulated clock
    assert not b.try_take(999)
    assert b.try_take(1000)
    # never exceeds the cap after a long idle stretch
    assert b.try_take(10_000_000) and b.try_take(10_000_000)
    assert not b.try_take(10_000_000)


def test_registry_rejects_unsatisfiable_reservations():
    reg = TenantRegistry()
    reg.create("a", frame_reservation=3)
    reg.create("b", frame_reservation=3)
    with pytest.raises(ValueError):
        reg.validate_against(4)
    reg2 = TenantRegistry()
    reg2.create("a", frame_reservation=2)
    reg2.create("b", frame_reservation=2)
    reg2.validate_against(4)


def test_adopt_rejects_double_adoption():
    reg = TenantRegistry()
    a, b = reg.create("a"), reg.create("b")
    sim, cfg, net, nics = build_nics(1)
    ep = add_ep(sim, nics[0], cfg, 1, 10)
    a.adopt(ep)
    with pytest.raises(ValueError):
        b.adopt(ep)
    a.adopt(ep)  # re-adoption by the owner is a no-op
    assert len(a.endpoints) == 1


# --------------------------------------------------- rate limit = backpressure
def test_rate_limit_backpressures_in_send_ring_no_drops():
    """An empty token bucket defers service: messages wait in the send
    ring and all of them are eventually delivered, paced at the bucket
    interval — exhaustion never surfaces as a drop."""
    sim, cfg, net, nics = build_nics(2)
    a = add_ep(sim, nics[0], cfg, 1, 10)
    b = add_ep(sim, nics[1], cfg, 1, 20)
    tenant = Tenant(TenantSpec(name="slow", rate_msgs_per_s=100_000.0,
                               burst_msgs=8))  # 10 us/token
    tenant.adopt(a)
    sim.run(until=ms(1))

    n_msgs = 24
    for i in range(n_msgs):
        nics[0].host_enqueue_send(a, mk((0, 1), (1, 1), 20))
    arrivals = []

    def drain():
        while len(arrivals) < n_msgs:
            if nics[1].host_poll_recv(b):
                arrivals.append(sim.now)
            yield sim.timeout(us(1))

    sim.spawn(drain())
    sim.run(until=ms(1) + ms(2))

    assert len(arrivals) == n_msgs  # every message arrived: no drops
    assert tenant.stats.msgs_serviced == n_msgs
    assert tenant.stats.throttled >= 1
    # 8 burst tokens, then 16 messages paced at >= 10 us each
    paced_ns = arrivals[-1] - ms(1)
    assert paced_ns >= 16 * us(10)
    for reason in ("loss", "linkdown", "noroute", "dead_nic"):
        assert getattr(net.stats, f"dropped_{reason}") == 0


# -------------------------------------------------------- weighted service
def test_weighted_rotation_converges_to_configured_shares():
    """Weight 3 vs weight 1 on one NI with both rings deep: the service
    interleave converges to ~3:1 while both eventually drain fully."""
    sim, cfg, net, nics = build_nics(2, wrr_max_msgs=4)
    heavy_ep = add_ep(sim, nics[0], cfg, 1, 10, frame=0)
    light_ep = add_ep(sim, nics[0], cfg, 2, 11, frame=1)
    b1 = add_ep(sim, nics[1], cfg, 1, 20, frame=0)
    b2 = add_ep(sim, nics[1], cfg, 2, 21, frame=1)
    reg = TenantRegistry()
    reg.create("heavy", weight=3).adopt(heavy_ep)
    reg.create("light", weight=1).adopt(light_ep)
    sim.run(until=ms(1))

    per_ep = 48
    for _ in range(per_ep):
        nics[0].host_enqueue_send(heavy_ep, mk((0, 1), (1, 1), 20))
        nics[0].host_enqueue_send(light_ep, mk((0, 2), (1, 2), 21))
    arrivals = []

    def drain():
        while len(arrivals) < 2 * per_ep:
            if nics[1].host_poll_recv(b1):
                arrivals.append("heavy")
            if nics[1].host_poll_recv(b2):
                arrivals.append("light")
            yield sim.timeout(us(2))

    sim.spawn(drain())
    sim.run(until=ms(1) + ms(4))

    assert len(arrivals) == 2 * per_ep  # both tenants drain completely
    window = arrivals[: 2 * per_ep // 2]
    heavy_share = window.count("heavy") / len(window)
    # configured share is 3/4; allow slack for rotation boundaries
    assert 0.60 <= heavy_share <= 0.85
    assert reg.get("heavy").stats.msgs_serviced == per_ep
    assert reg.get("light").stats.msgs_serviced == per_ep


# ------------------------------------------------------- eviction enforcement
def _warm(cluster, ep):
    cluster.run_process(cluster.node(ep.node).driver.write_fault(ep), "w")
    cluster.run(until=cluster.sim.now + ms(20))


def test_cross_tenant_eviction_vetoed_at_reservation():
    """Under overcommit, a tenant may never be evicted below its frame
    reservation by another tenant — the victim must come from the
    requester's own holdings."""
    cluster = Cluster(ClusterConfig(num_hosts=1, endpoint_frames=2))
    drv = cluster.node(0).driver
    reg = TenantRegistry()
    protected = reg.create("protected", frame_reservation=1)
    greedy = reg.create("greedy")
    reg.validate_against(cluster.cfg.endpoint_frames)

    p1 = cluster.run_process(drv.alloc_endpoint(tag=1), "a1")
    g1 = cluster.run_process(drv.alloc_endpoint(tag=2), "a2")
    g2 = cluster.run_process(drv.alloc_endpoint(tag=3), "a3")
    protected.adopt(p1)
    greedy.adopt(g1, g2)

    _warm(cluster, p1)
    _warm(cluster, g1)
    assert p1.resident and g1.resident  # both frames occupied
    _warm(cluster, g2)  # overcommit: greedy needs a victim

    assert g2.resident
    assert p1.resident, "protected tenant evicted below its reservation"
    assert not g1.resident  # greedy victimized its own endpoint
    assert protected.stats.reservation_vetoes >= 1
    assert protected.stats.evictions_suffered == 0
    assert greedy.stats.quota_self_evictions == 1


def test_frame_quota_forces_self_paging():
    """A tenant at its frame quota must victimize its own endpoints even
    when other tenants' frames would otherwise be preferred victims."""
    cluster = Cluster(ClusterConfig(num_hosts=1, endpoint_frames=2))
    drv = cluster.node(0).driver
    reg = TenantRegistry()
    capped = reg.create("capped", frame_quota=1)
    other = reg.create("other")

    o1 = cluster.run_process(drv.alloc_endpoint(tag=1), "a1")
    c1 = cluster.run_process(drv.alloc_endpoint(tag=2), "a2")
    c2 = cluster.run_process(drv.alloc_endpoint(tag=3), "a3")
    other.adopt(o1)
    capped.adopt(c1, c2)

    _warm(cluster, o1)
    _warm(cluster, c1)
    assert o1.resident and c1.resident
    _warm(cluster, c2)  # capped is at quota: must self-page

    assert c2.resident
    assert o1.resident, "quota'd tenant stole another tenant's frame"
    assert not c1.resident
    assert capped.stats.quota_self_evictions == 1
    assert other.stats.evictions_suffered == 0


# ------------------------------------------------------ storm regression
def _bench_interference():
    # the BENCH_TENANT.json rate2k smoke cell, exactly: changing these
    # params changes which wormhole head-of-line wedges a probe can hit
    # (a crash mid-bulk-fragment stalls the shared path into node 1 for
    # up to a dead-peer timeout), so the regression pins the gated shape
    return InterferenceWorkload(quiet_weight=4, quiet_reservation=1,
                                noisy_rate_msgs_s=2_000.0)


def test_storm_interference_replays_bit_exactly():
    """The seeded noisy-tenant storm satisfies the delivery contract and
    the quiet tenant's SLO, and its timeline digest is bit-stable; on a
    mismatch the assertion message is the replay recipe."""
    wl = _bench_interference()
    scenario = _storm_scenario(11, wl, "brutal")
    r1 = run_chaos(scenario, wl, num_hosts=4, keep=True)
    wl2 = _bench_interference()
    r2 = run_chaos(_storm_scenario(11, wl2, "brutal"), wl2, num_hosts=4)

    assert r1.ok, f"contract violations: {[str(v) for v in r1.violations]}"
    assert r1.digest == r2.digest, (
        f"storm replay diverged for {scenario.describe()}: "
        f"{r1.digest[:16]} vs {r2.digest[:16]} — replay with "
        f"run_chaos(_storm_scenario(11, ...), InterferenceWorkload(...))")

    # storm faults must all land inside the noisy fault domain
    assert r1.faults_injected > 0
    # baseline: the calm rate2k cell's quiet p99 from BENCH_TENANT.json
    slo = IsolationSLO(baseline_p99_ns=296_800,
                       max_p99_inflation=3.0, min_goodput_frac=0.5)
    iso = check_isolation(r1.bus.events, wl, slo)
    assert not iso, [str(v) for v in iso]
    assert wl.quiet_answered > 0  # goodput never zero

    # the SLO gates themselves must be able to fire: an absurdly tight
    # baseline trips ISO.p99 on the same timeline
    tight = IsolationSLO(baseline_p99_ns=1, max_p99_inflation=1.0)
    tripped = check_isolation(r1.bus.events, wl, tight)
    assert any(v.invariant == "ISO.p99" for v in tripped)

    # per-tenant counters surface through the obs metric registry
    r1.bus.publish_tenants(wl.registry)
    flat = r1.bus.metrics.flat()
    assert "tenant.msgs_serviced{tenant=noisy}" in flat
    assert "tenant.frames_held{tenant=quiet}" in flat
