"""Duplicate-suppression window sizing (``ClusterConfig.dup_window``).

The receiver remembers the last ``dup_window`` delivered message ids per
peer; a retransmitted copy of something already delivered is re-ACKed
without redelivery — that memory is what makes delivery exactly once
across unbind/rebind (Section 3.2 / 5.3).  The window is finite, so an
undersized one *can* forget a delivery while its lost ACK is still being
retried, and the copy then delivers twice.  These tests pin both sides:
the chaos checker catches the double delivery when the window is starved,
and the default (512, vs 32 channels x 1 outstanding each) is safe under
heavy retransmission.
"""

import pytest

from repro.chaos import ScheduleGenerator, chaos_config, run_chaos
from repro.cluster import ClusterConfig
from repro.nic.channels import RxPeerState


def _loss_ramp(seed):
    gen = ScheduleGenerator(seed, num_hosts=8, num_spines=2, num_procs=4,
                            num_eps=4, duration_ns=20_000_000, profile="brutal")
    return gen.generate("loss_ramp")


def test_window_evicts_oldest_first():
    peer = RxPeerState(3, window=4)
    for msg_id in range(1, 6):
        peer.record_delivery(msg_id)
    assert not peer.is_duplicate(1)  # overflowed out — would redeliver
    assert all(peer.is_duplicate(m) for m in (2, 3, 4, 5))


def test_window_depth_comes_from_config():
    assert ClusterConfig().dup_window == RxPeerState.WINDOW == 512
    with pytest.raises(ValueError):
        ClusterConfig(dup_window=0).validate()


def test_starved_window_double_delivers_and_checker_flags_it():
    # window=1 with 32 concurrent channels per pair: a delivery on one
    # channel evicts the memory of another channel's delivery while that
    # ACK is still lost in the ramp — the retransmitted copy delivers
    # twice, and the trace checker must call it out.
    report = run_chaos(_loss_ramp(1), "pairwise",
                       cfg=chaos_config(1, num_hosts=8, dup_window=1))
    assert report.duplicates > 0
    assert any(v.invariant.startswith("I2") for v in report.violations)


def test_default_window_survives_the_same_storm():
    # identical seed/scenario/workload, default window: exactly once holds
    report = run_chaos(_loss_ramp(1), "pairwise")
    assert report.duplicates == 0
    assert report.ok, report.violations[:4]
