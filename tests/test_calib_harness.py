"""The calibration harness: golden cell, determinism, and the round trip.

Three acceptance properties:

* a fixed-seed **golden cell** (leaf4 0-1 pingpong 16B) measures the
  host overheads exactly and the one-way latency on top of the
  configured surface to sub-nanosecond agreement;
* running the same cell (and the same smoke matrix) twice is
  **bit-identical** — same digests, same observables;
* the full smoke sweep's fitted constants **round-trip** against the
  configured cost model within the CI tolerance (±10%), and an absurd
  tolerance fails loudly.
"""

import pytest

from repro.calib.model import configured_model, round_trip
from repro.calib.sweep import (CalibCell, default_cells, route_links,
                               run_calibration, run_cell)
from repro.cluster.config import ClusterConfig

GOLDEN = CalibCell("leaf4", (0, 1), "pingpong", 16, 12)


def test_golden_cell_matches_configured_model_exactly():
    res = run_cell(GOLDEN, seed=1999)
    model = configured_model(ClusterConfig(num_hosts=4))
    # host overheads are paid verbatim by request()/poll(): exact
    assert res.os_ns == model.os_ns
    assert res.or_ns == model.or_ns
    # the measured one-way mean sits on the configured latency surface
    # (integer-rounded event timestamps, hence the 1 ns slack)
    assert res.headline_ns == pytest.approx(model.L_ns(2, 16), abs=1.0)
    assert res.samples == GOLDEN.rounds


def test_golden_cell_double_run_is_bit_identical():
    a = run_cell(GOLDEN, seed=1999)
    b = run_cell(GOLDEN, seed=1999)
    assert a.digest == b.digest
    assert (a.sim_ns, a.events, a.headline_ns) == (b.sim_ns, b.events, b.headline_ns)


def test_flood_cell_measures_configured_gap():
    res = run_cell(CalibCell("leaf4", (0, 1), "flood", 16, 120), seed=1999)
    model = configured_model(ClusterConfig(num_hosts=4))
    assert res.headline_ns == pytest.approx(model.g_ns, rel=0.02)


def test_route_links_follows_leaf_geometry():
    cfg = ClusterConfig(num_hosts=16)  # radix 8 -> 4 hosts per leaf
    assert route_links(cfg, 0, 1) == 2
    assert route_links(cfg, 0, 5) == 4
    assert route_links(cfg, 4, 7) == 2


def test_smoke_matrix_is_smaller_than_full():
    assert len(default_cells(True)) < len(default_cells(False))


@pytest.fixture(scope="module")
def smoke_report():
    # one shared smoke sweep (cells only; the workload bench has its own
    # test module) — module-scoped because the sweep is the slow part
    return run_calibration(smoke=True, include_workloads=False)


def test_smoke_round_trip_within_tolerance(smoke_report):
    assert smoke_report.failures == []
    assert smoke_report.fit is not None
    # every compared constant inside the CI gate's ±10%
    assert all(row["ok"] for row in smoke_report.comparisons)


def test_smoke_report_serializes(smoke_report):
    doc = smoke_report.to_json()
    assert doc["fitted"]["os_ns"] == smoke_report.fit.os_ns
    assert len(doc["cells"]) == len(default_cells(True))
    assert doc["digest"] == smoke_report.digest


def test_round_trip_flags_divergence(smoke_report):
    # shrink the tolerance to something impossible: the comparison must
    # fail loudly, proving the gate actually bites
    rows, failures = round_trip(smoke_report.fit, smoke_report.configured,
                                [("golden", 2, 16)], tolerance=0.0)
    assert failures, "zero tolerance must produce failures"
    assert any(not r["ok"] for r in rows)


def test_smoke_sweep_double_run_is_bit_identical(smoke_report):
    # the --smoke CI gate's core property, asserted directly: the same
    # reduced matrix twice -> identical aggregate digests
    again = run_calibration(smoke=True, include_workloads=False)
    assert again.digest == smoke_report.digest
    assert ([c.digest for c in again.cells]
            == [c.digest for c in smoke_report.cells])
