"""Unit tests for Resource, Store and Gate."""

import pytest

from repro.sim import Gate, Resource, SimError, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(name, hold):
        yield res.acquire()
        order.append((sim.now, name, "got"))
        yield sim.timeout(hold)
        res.release()

    sim.spawn(user("a", 10))
    sim.spawn(user("b", 10))
    sim.spawn(user("c", 10))
    sim.run()
    assert order == [(0, "a", "got"), (10, "b", "got"), (20, "c", "got")]


def test_resource_capacity_two_runs_pairs():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    got = []

    def user(name):
        yield res.acquire()
        got.append((sim.now, name))
        yield sim.timeout(10)
        res.release()

    for name in "abcd":
        sim.spawn(user(name))
    sim.run()
    assert got == [(0, "a"), (0, "b"), (10, "c"), (10, "d")]


def test_resource_try_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimError):
        res.release()


def test_resource_bad_capacity():
    with pytest.raises(SimError):
        Resource(Simulator(), capacity=0)


def test_resource_queue_length_tracks_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield res.acquire()
        yield sim.timeout(100)
        res.release()

    def waiter():
        yield res.acquire()
        res.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.run(until=50)
    assert res.queue_length == 2
    sim.run()
    assert res.queue_length == 0


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    st = Store(sim)

    def proc():
        yield st.put("x")
        yield st.put("y")
        a = yield st.get()
        b = yield st.get()
        return [a, b]

    assert sim.run_process(proc()) == ["x", "y"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    st = Store(sim)
    got = []

    def consumer():
        item = yield st.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(25)
        yield st.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(25, "late")]


def test_store_bounded_put_blocks():
    sim = Simulator()
    st = Store(sim, capacity=1)
    timeline = []

    def producer():
        yield st.put(1)
        timeline.append(("p1", sim.now))
        yield st.put(2)
        timeline.append(("p2", sim.now))

    def consumer():
        yield sim.timeout(40)
        item = yield st.get()
        timeline.append(("g", sim.now, item))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("p1", 0) in timeline
    assert ("g", 40, 1) in timeline
    assert ("p2", 40) in timeline


def test_store_try_put_try_get():
    sim = Simulator()
    st = Store(sim, capacity=2)
    assert st.try_put(1)
    assert st.try_put(2)
    assert not st.try_put(3)
    ok, item = st.try_get()
    assert ok and item == 1
    ok, _ = st.try_get()
    assert ok
    ok, item = st.try_get()
    assert not ok and item is None


def test_store_fifo_across_many_items():
    sim = Simulator()
    st = Store(sim)
    out = []

    def producer():
        for i in range(50):
            yield st.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(50):
            out.append((yield st.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert out == list(range(50))


def test_store_direct_handoff_to_waiting_getter():
    sim = Simulator()
    st = Store(sim, capacity=1)

    def consumer():
        return (yield st.get())

    p = sim.spawn(consumer())

    def producer():
        yield sim.timeout(5)
        assert st.try_put("direct")

    sim.spawn(producer())
    sim.run()
    assert p.result == "direct"
    assert len(st) == 0


# -------------------------------------------------------------------- Gate
def test_gate_set_wakes_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(name):
        yield gate.wait()
        woke.append((sim.now, name))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))

    def setter():
        yield sim.timeout(15)
        gate.set()

    sim.spawn(setter())
    sim.run()
    assert sorted(woke) == [(15, "a"), (15, "b")]


def test_gate_set_is_level_triggered():
    sim = Simulator()
    gate = Gate(sim, is_set=True)

    def waiter():
        yield gate.wait()
        return sim.now

    assert sim.run_process(waiter()) == 0


def test_gate_clear_blocks_later_waiters():
    sim = Simulator()
    gate = Gate(sim, is_set=True)
    gate.clear()
    woke = []

    def waiter():
        yield gate.wait()
        woke.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert woke == []
    gate.set()
    sim.run()
    assert woke == [0]


def test_gate_pulse_wakes_but_stays_clear():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(tag):
        yield gate.wait()
        woke.append(tag)

    sim.spawn(waiter("first"))
    sim.run()
    gate.pulse()
    sim.run()
    assert woke == ["first"]
    assert not gate.is_set
    sim.spawn(waiter("second"))
    sim.run()
    assert woke == ["first"]  # second still blocked
