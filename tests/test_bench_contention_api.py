"""Tests for the contention sweep API and reporting (no heavy runs)."""

from repro.apps.clientserver import ContentionConfig, ContentionResult
from repro.bench.contention import FIG6_CONFIGS, SweepResult, report


def fake_result(nclients, per_client, overruns=0, remaps=0.0):
    r = ContentionResult(config=ContentionConfig(nclients=nclients))
    r.per_client_msgs_s = list(per_client)
    r.aggregate_msgs_s = sum(per_client)
    r.aggregate_mb_s = r.aggregate_msgs_s * 0 / 1e6
    r.overrun_nacks = overruns
    r.remaps_per_s = remaps
    return r


def make_sweep(msg_bytes=0):
    sweep = SweepResult(msg_bytes=msg_bytes, clients=[1, 2])
    for label, _, _ in FIG6_CONFIGS:
        sweep.series[label] = [
            fake_result(1, [70_000.0], remaps=250.0 if "8" in label else 0.0),
            fake_result(2, [35_000.0, 35_000.0], overruns=900),
        ]
    return sweep


def test_sweep_aggregate_series():
    sweep = make_sweep()
    assert sweep.aggregate_series("OneVN") == [70_000.0, 70_000.0]


def test_sweep_per_client_series_mean():
    sweep = make_sweep()
    assert sweep.per_client_series("ST-8") == [70_000.0, 35_000.0]


def test_sweep_bulk_units():
    sweep = SweepResult(msg_bytes=8192, clients=[1])
    r = fake_result(1, [5_000.0])
    r.aggregate_mb_s = r.aggregate_msgs_s * 8192 / 1e6
    sweep.series["OneVN"] = [r]
    assert abs(sweep.aggregate_series("OneVN")[0] - 40.96) < 0.01
    assert abs(sweep.per_client_series("OneVN")[0] - 40.96) < 0.01


def test_report_formats_all_configs():
    sweep = make_sweep()
    text = report(sweep)
    assert "Figure 6" in text
    for label, _, _ in FIG6_CONFIGS:
        assert label in text
    assert "paper: 200-300" not in text or "remaps/s" in text


def test_report_mentions_remaps_past_eight_clients():
    sweep = SweepResult(msg_bytes=0, clients=[8, 12])
    for label, _, _ in FIG6_CONFIGS:
        sweep.series[label] = [
            fake_result(8, [8_000.0] * 8),
            fake_result(12, [5_000.0] * 12, remaps=280.0),
        ]
    text = report(sweep)
    assert "remaps/s past 8 clients" in text
    assert "12:280" in text
