"""The sharded PDES kernel: determinism contract, windowing, ingress.

DESIGN.md §13 promises bit-identical :meth:`ShardRunResult.checks`
(digest + delivery count + dispatched events) across all three
executors — the shared-heap sequential baseline, the in-process
windowed scheduler, and the multiprocessing workers.  These tests pin
that contract across seeds, scenarios and shard counts, then unit-test
the load-bearing pieces: canonical trunk ingress ordering, same-host
serialization, the conservative-window violation guard, and the
config-level invariants that make the lookahead sound.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.sim import SimError, Simulator
from repro.sim.sharded import (SHARD_SCENARIOS, Shard, ShardSpec,
                               ShardedSimulator, TrunkIngress)

#: small-but-nontrivial workload: every scenario still crosses shards
FAST = dict(waves=3, stagger_ns=4_000, pad_ns=12_000)


def make_sharded(num_shards, scenario="uniform", seed=7, hosts_per_shard=4,
                 **params):
    cfg = ClusterConfig(num_hosts=num_shards * hosts_per_shard,
                        num_shards=num_shards, seed=seed, engine="sharded")
    return ShardedSimulator(cfg, scenario=scenario, params={**FAST, **params})


# ------------------------------------------------- the determinism contract
@pytest.mark.parametrize("scenario", sorted(SHARD_SCENARIOS))
def test_one_shard_sharded_equals_sequential_across_seeds(scenario):
    """Degenerate case, propertized: with one shard the windowed
    executor must reproduce the plain shared-heap run bit-for-bit, for
    every seed and scenario — no trunk traffic exists to hide behind."""
    for seed in range(10):
        ss = make_sharded(1, scenario, seed=seed)
        seq = ss.run("sequential")
        win = ss.run("inprocess")
        assert win.checks == seq.checks, (scenario, seed)
        assert seq.events > 0 and seq.deliveries


@pytest.mark.parametrize("scenario", sorted(SHARD_SCENARIOS))
@pytest.mark.parametrize("shards", [2, 4])
def test_windowed_matches_sequential(scenario, shards):
    ss = make_sharded(shards, scenario)
    seq = ss.run("sequential")
    win = ss.run("inprocess")
    assert win.checks == seq.checks
    # Cross-shard traffic actually happened: the digest is not
    # vacuously equal over a trunk nobody used.
    assert sum(b["handoffs"] for b in win.boundary_stats) > 0
    assert any(rec[0] == "T" for rec in win.deliveries)
    assert win.barriers > 0


def test_four_shard_chaos_storm_replay_bit_identity():
    """The flagship gate: 4-shard chaos storm — link flaps, express
    demotions, trunk replies — is bit-identical across sequential,
    inprocess and mp executors, and replays to the same digest."""
    ss = make_sharded(4, "chaos_storm", seed=11)
    seq = ss.run("sequential")
    win = ss.run("inprocess")
    mp = ss.run("mp")
    assert win.checks == seq.checks
    assert mp.checks == seq.checks
    # replay: a fresh build of the same spec reproduces the digest
    replay = make_sharded(4, "chaos_storm", seed=11).run("inprocess")
    assert replay.checks == seq.checks


def test_seed_changes_digest():
    # uniform draws no RNG, so seed sensitivity lives in the seeded
    # flap schedule of chaos_storm
    d7 = make_sharded(2, "chaos_storm", seed=7).run("inprocess").digest()
    d8 = make_sharded(2, "chaos_storm", seed=8).run("inprocess").digest()
    assert d7 != d8


def test_parallelism_reported_on_windowed_runs():
    win = make_sharded(4, "uniform").run("inprocess")
    assert win.crit_events > 0
    assert win.parallelism() > 1.0
    assert len(win.shard_events) == 4
    assert sum(win.shard_events) == win.events
    # sequential runs carry no windowed schedule
    seq = make_sharded(4, "uniform").run("sequential")
    assert seq.parallelism() == 1.0


def test_unknown_scenario_and_executor_raise():
    with pytest.raises(SimError, match="unknown shard scenario"):
        ShardedSimulator(ClusterConfig(num_hosts=8, num_shards=2),
                         scenario="nope").run("sequential")
    with pytest.raises(SimError, match="unknown shard executor"):
        make_sharded(2).run("warp")


def test_num_hosts_must_divide_into_shards():
    with pytest.raises(SimError, match="divide evenly"):
        ShardedSimulator(ClusterConfig(num_hosts=10, num_shards=4))


# ------------------------------------------------------------ trunk ingress
def one_shard(num_shards=2, shard_id=1, hosts_per_shard=4, scenario="uniform"):
    cfg = ClusterConfig(num_hosts=num_shards * hosts_per_shard,
                        num_shards=num_shards, engine="sharded")
    spec = ShardSpec(shard_id, num_shards, hosts_per_shard, scenario,
                     dict(FAST, waves=0, reply=False), cfg)
    return Shard(spec)


def rec(arrive, src_shard=0, seq=0, dst_g=4, nbytes=64, mid=1, kind=0):
    return (arrive, src_shard, seq, 0, dst_g, mid, nbytes, kind)


def test_ingress_serializes_same_host_arrivals_onto_distinct_ticks():
    shard = one_shard()
    # Three records, same arrival tick, same destination host, pushed
    # out of canonical order — delivery must come back in (arrive,
    # src_shard, seq) order on strictly increasing ticks.
    shard.ingress.push(rec(5_000, src_shard=0, seq=1, mid=12))
    shard.ingress.push(rec(5_000, src_shard=0, seq=0, mid=11))
    shard.sim.run()
    trunk = [d for d in shard.deliveries if d[0] == "T"]
    assert [d[4] for d in trunk] == [11, 12]
    t0, t1 = trunk[0][1], trunk[1][1]
    assert t1 >= t0 + shard.boundary.ingress_gap_ns(64)
    assert shard.boundary.ingress_gap_ns(0) >= 1


def test_ingress_different_hosts_deliver_at_arrival():
    shard = one_shard()
    shard.ingress.push(rec(5_000, dst_g=4, mid=1))
    shard.ingress.push(rec(5_000, dst_g=5, mid=2))
    shard.sim.run()
    trunk = sorted(d for d in shard.deliveries if d[0] == "T")
    assert [d[1] for d in trunk] == [5_000, 5_000]


def test_conservative_window_violation_fails_loudly():
    shard = one_shard()
    shard.sim.run()  # now > 0 is irrelevant; now == arrive must raise
    with pytest.raises(SimError, match="conservative window violated"):
        shard.ingress.push(rec(shard.sim.now))


def test_trunk_request_schedules_reply_back_through_boundary():
    cfg = ClusterConfig(num_hosts=8, num_shards=2, engine="sharded")
    spec = ShardSpec(1, 2, 4, "uniform", dict(FAST, waves=0, reply=True), cfg)
    shard = Shard(spec)
    shard.ingress.push(rec(5_000, dst_g=4, mid=1, kind=0))
    shard.sim.run()
    # the reply leaves as a trunk record, never touching local fabric
    assert len(shard.outbox) == 1
    reply = shard.outbox[0]
    assert (reply[3], reply[4]) == (4, 0)  # src_g, dst_g swapped back
    assert reply[7] == 1  # KIND_RSP
    assert shard.net.stats.sent == 0
    assert shard.boundary.stats.handoffs == 1


# ------------------------------------------------------- config invariants
def test_validate_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        ClusterConfig(engine="quantum").validate()


def test_validate_rejects_lookahead_beyond_trunk():
    cfg = ClusterConfig(shard_trunk_latency_us=25.0, shard_lookahead_us=26.0)
    with pytest.raises(ValueError, match="must not exceed"):
        cfg.validate()


def test_validate_rejects_trunk_faster_than_fabric():
    with pytest.raises(ValueError, match="undercuts the fat-tree minimum"):
        ClusterConfig(shard_trunk_latency_us=0.001).validate()


def test_lookahead_defaults_to_trunk_base():
    cfg = ClusterConfig(shard_trunk_latency_us=25.0)
    assert cfg.shard_lookahead_ns == cfg.shard_trunk_base_ns
    cfg2 = ClusterConfig(shard_trunk_latency_us=25.0, shard_lookahead_us=10.0)
    assert cfg2.shard_lookahead_ns == 10_000


def test_validate_rejects_bad_shard_counts_and_workers():
    with pytest.raises(ValueError, match="num_shards"):
        ClusterConfig(num_shards=0).validate()
    with pytest.raises(ValueError, match="shard_workers"):
        ClusterConfig(shard_workers="threads").validate()
