"""The engine facade: resolution, Session threading, bench registry.

``repro.api`` is the stable surface; these tests pin the redesigned
contract — every harness reaches its kernel through
:func:`resolve_engine`/:func:`resolve_kernel`, a Session accepts any
engine spec, the bench registry fronts every suite under one name, the
umbrella CLI dispatches, and the pre-engine entrypoints warn loudly
while still working.
"""

import warnings

import pytest

from repro.api import (ENGINE_NAMES, AmError, ClusterConfig, Engine,
                       EngineError, ReferenceEngine, Session,
                       SequentialEngine, ShardedEngine, describe,
                       resolve_engine, run_bench)
from repro.api.engine import resolve_kernel
from repro.sim import ReferenceSimulator, Simulator


# ------------------------------------------------------------- resolution
def test_resolve_engine_by_name_and_passthrough():
    assert isinstance(resolve_engine("sequential"), SequentialEngine)
    assert isinstance(resolve_engine("reference"), ReferenceEngine)
    eng = ShardedEngine(num_shards=4)
    assert resolve_engine(eng) is eng


def test_resolve_engine_none_consults_config():
    assert isinstance(resolve_engine(None), SequentialEngine)
    cfg = ClusterConfig(engine="reference")
    assert isinstance(resolve_engine(None, cfg), ReferenceEngine)


def test_resolve_engine_sharded_picks_up_config_knobs():
    cfg = ClusterConfig(num_hosts=8, num_shards=2, shard_workers="mp",
                        shard_trunk_latency_us=30.0)
    eng = resolve_engine("sharded", cfg)
    assert (eng.num_shards, eng.workers, eng.trunk_latency_us) == (2, "mp", 30.0)


def test_resolve_engine_rejects_unknowns():
    with pytest.raises(EngineError, match="unknown engine"):
        resolve_engine("quantum")
    with pytest.raises(EngineError, match="not an engine spec"):
        resolve_engine(42)


def test_resolve_kernel_honors_legacy_sim_factory():
    assert resolve_kernel(None, sim_factory=ReferenceSimulator) is ReferenceSimulator
    # a named engine wins over cfg defaults
    assert resolve_kernel("sequential", sim_factory=None) is Simulator
    assert resolve_kernel("reference") is ReferenceSimulator


def test_sharded_engine_kernel_factory_degenerates_at_one_shard():
    assert ShardedEngine(num_shards=1).kernel_factory() is Simulator
    with pytest.raises(EngineError, match="not shard-partitionable"):
        ShardedEngine(num_shards=4).kernel_factory()


def test_sharded_engine_simulator_builds_runner():
    eng = ShardedEngine(num_shards=2)
    ss = eng.simulator(ClusterConfig(num_hosts=8), scenario="uniform",
                       params={"waves": 2})
    res = ss.run("sequential")
    assert res.events > 0 and res.num_shards == 2


# --------------------------------------------------------------- sessions
def test_session_engine_matrix():
    with Session(nodes=[0, 1], num_hosts=4) as s:
        assert s.engine.name == "sequential"
        assert type(s.sim) is Simulator
    with Session(nodes=[0, 1], num_hosts=4, engine="reference") as s:
        assert s.engine.name == "reference"
        assert type(s.sim) is ReferenceSimulator
    # sharded at num_shards == 1 is honest: the plain kernel
    with Session(nodes=[0, 1], num_hosts=4, engine="sharded") as s:
        assert s.engine.name == "sharded"
        assert type(s.sim) is Simulator


def test_session_rejects_multi_shard_monolithic_build():
    with pytest.raises(EngineError, match="monolithic"):
        Session(nodes=[0, 1], num_hosts=8, num_shards=2, engine="sharded")


def test_session_engine_via_config_field():
    with Session(nodes=[0, 1], num_hosts=4,
                 cfg=ClusterConfig(num_hosts=4, engine="reference")) as s:
        assert s.engine.name == "reference"


# ---------------------------------------------------------- bench registry
def test_describe_lists_the_surface():
    d = describe()
    assert d["engines"] == list(ENGINE_NAMES)
    assert {"perf", "calib", "scale", "tenant", "shard_scaling"} <= set(d["benches"])
    assert "lru" in d["replacement_policies"]


def test_run_bench_unknown_name_raises():
    with pytest.raises(AmError, match="unknown bench"):
        run_bench("nope")


def test_run_bench_shard_scaling_smoke():
    out = run_bench("shard_scaling", engine="sharded", shard_counts=(1, 2),
                    mp_counts=(), quick=True)
    assert set(out["shards"]) == {"1", "2"}
    for entry in out["shards"].values():
        assert entry["digest_match"]
    with pytest.raises(EngineError, match="only runs on the sharded"):
        run_bench("shard_scaling", engine="reference")


def test_session_run_bench_uses_session_engine():
    with Session(nodes=[0, 1], num_hosts=4, engine="sharded") as s:
        out = s.run_bench("shard_scaling", shard_counts=(1,), mp_counts=(),
                          quick=True)
    assert out["shards"]["1"]["digest_match"]


# ------------------------------------------------------- deprecated shims
def test_deprecated_replacement_policies_warns_and_matches_describe():
    from repro.api import replacement_policies

    with pytest.warns(DeprecationWarning, match="replacement_policies"):
        pols = replacement_policies()
    assert pols == describe()["replacement_policies"]


def test_deprecated_run_calibration_warns():
    from repro.api import run_calibration

    with pytest.warns(DeprecationWarning, match="run_bench"):
        out = run_calibration(smoke=True)
    assert out.cells


def test_deprecated_run_interference_bench_warns():
    from repro.api import run_interference_bench

    with pytest.warns(DeprecationWarning, match="run_bench"):
        out = run_interference_bench(seeds=(11,), policies=("weighted",))
    assert out["ok"] and out["cells"]


def test_new_paths_are_warning_clean():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        describe()
        run_bench("calib", smoke=True)
        with Session(nodes=[0, 1], num_hosts=4, engine="sequential"):
            pass


# ------------------------------------------------------------ umbrella CLI
def test_umbrella_cli_dispatch(capsys, tmp_path):
    from repro.__main__ import main

    assert main([]) == 0
    assert "python -m repro" in capsys.readouterr().out
    assert main(["-h"]) == 0
    capsys.readouterr()
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err
    out = tmp_path / "shard.json"
    assert main(["bench", "--shard-smoke", "--out", str(out)]) == 0
    assert out.exists()
