"""Unit tests for the Myrinet fabric: topology, routing, traversal, faults."""

import pytest

from repro.cluster import ClusterConfig
from repro.myrinet import FatTreeTopology, FaultInjector, Network, Packet, PacketType
from repro.sim import Simulator, us


def make_net(n=8, **kw):
    cfg = ClusterConfig(num_hosts=n, **kw)
    sim = Simulator()
    return sim, Network(sim, cfg), cfg


# -------------------------------------------------------------- topology
def test_topology_scale_matches_paper_order():
    topo = FatTreeTopology(Simulator(), ClusterConfig())
    # Paper: 25 switches / 185 links; our 2-level Clos equivalent is the
    # same order of magnitude with identical per-leaf bisection.
    assert topo.num_leaves == 25
    assert topo.num_spines == 4
    assert len(topo.switches) == 29
    assert 150 <= topo.num_cables() <= 250


def test_leaf_assignment():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=100))
    assert topo.leaf_of(0) == 0
    assert topo.leaf_of(3) == 0
    assert topo.leaf_of(4) == 1
    assert topo.leaf_of(99) == 24


def test_route_same_leaf_is_two_links():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=100))
    route = topo.route(0, 1, 0)
    assert len(route) == 2
    assert topo.hop_count(0, 1) == 1


def test_route_cross_leaf_is_four_links_three_switches():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=100))
    route = topo.route(0, 99, 0)
    assert len(route) == 4
    assert topo.hop_count(0, 99) == 3


def test_route_self_is_empty():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=8))
    assert topo.route(3, 3, 0) == []


def test_channels_spread_over_spines():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=100))
    spines = {topo.route(0, 99, ch)[1].name for ch in range(4)}
    assert len(spines) == 4  # static channel->path binding multipaths


def test_route_avoids_down_spine():
    sim = Simulator()
    topo = FatTreeTopology(sim, ClusterConfig(num_hosts=100))
    r0 = topo.route(0, 99, 0)
    spine_link = r0[1]
    spine = int(spine_link.name.split("s")[-1])
    topo.spine_switch(spine).up = False
    r1 = topo.route(0, 99, 0)
    assert r1 is not None
    assert r1[1] is not spine_link


def test_route_none_when_host_link_down():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=8))
    topo.host_up[0].up = False
    assert topo.route(0, 5, 0) is None


def test_single_host_topology():
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=1))
    assert topo.num_spines == 0
    assert topo.route(0, 0, 0) == []


# ------------------------------------------------------------- traversal
def test_delivery_latency_matches_min_latency():
    sim, net, cfg = make_net(8)
    seen = []
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: seen.append(sim.now))
    pkt = Packet(src_nic=0, dst_nic=5, kind=PacketType.DATA, payload_bytes=16)
    net.send(pkt)
    sim.run()
    assert seen == [net.min_latency_ns(0, 5, pkt.wire_bytes(cfg.packet_header_bytes))]


def test_loopback_delivery():
    sim, net, _ = make_net(4)
    seen = []
    net.attach(1, lambda p: seen.append(sim.now))
    net.send(Packet(src_nic=1, dst_nic=1, kind=PacketType.DATA))
    sim.run()
    assert seen == [net.loopback_ns]


def test_link_serialization_congestion():
    """Two packets into the same destination serialize on its host link."""
    sim, net, cfg = make_net(8)
    arrivals = []
    net.attach(0, lambda p: None)
    net.attach(4, lambda p: None)
    net.attach(1, lambda p: arrivals.append(sim.now))
    big = 8192
    # src 0 and 4 are on different leaves from each other; both to 1
    for src in (0, 4):
        net.send(Packet(src_nic=src, dst_nic=1, kind=PacketType.DATA, payload_bytes=big))
    sim.run()
    assert len(arrivals) == 2
    gap = arrivals[1] - arrivals[0]
    # Second packet waits a full serialization of the first on some link.
    assert gap >= cfg.wire_ns(big) * 0.9


def test_packet_loss_drops():
    sim, net, cfg = make_net(8, packet_loss_prob=1.0)
    seen = []
    net.attach(0, lambda p: None)
    net.attach(1, lambda p: seen.append(p))
    net.send(Packet(src_nic=0, dst_nic=1, kind=PacketType.DATA))
    sim.run()
    assert seen == []
    assert net.stats.dropped_loss == 1


def test_corruption_flags_packet():
    sim, net, cfg = make_net(8, packet_corrupt_prob=1.0)
    seen = []
    net.attach(0, lambda p: None)
    net.attach(1, lambda p: seen.append(p.corrupted))
    net.send(Packet(src_nic=0, dst_nic=1, kind=PacketType.DATA))
    sim.run()
    assert seen == [True]


def test_dead_nic_swallow():
    sim, net, _ = make_net(8)
    net.attach(0, lambda p: None)
    net.attach(1, lambda p: pytest.fail("delivered to dead NIC"))
    net.set_nic_dead(1)
    net.send(Packet(src_nic=0, dst_nic=1, kind=PacketType.DATA))
    sim.run()
    assert net.stats.dropped_dead_nic == 1


def test_attach_twice_rejected():
    sim, net, _ = make_net(4)
    net.attach(0, lambda p: None)
    with pytest.raises(ValueError):
        net.attach(0, lambda p: None)
    with pytest.raises(ValueError):
        net.attach(99, lambda p: None)


# ----------------------------------------------------------------- faults
def test_fault_injector_spine_hotswap():
    sim, net, _ = make_net(100)
    inj = FaultInjector(sim, net)
    inj.set_spine(0, up=False)
    assert not net.topology.spine_switch(0).up
    # all routes still exist through remaining spines
    assert net.topology.route(0, 99, 0) is not None
    inj.set_spine(0, up=True)
    assert net.topology.spine_switch(0).up


def test_fault_injector_host_link_and_noroute():
    sim, net, _ = make_net(8)
    inj = FaultInjector(sim, net)
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: pytest.fail("unreachable"))
    inj.set_host_link(5, up=False)
    net.send(Packet(src_nic=0, dst_nic=5, kind=PacketType.DATA))
    sim.run()
    assert net.stats.dropped_noroute == 1


def test_fault_injector_validates_probability():
    sim, net, _ = make_net(4)
    inj = FaultInjector(sim, net)
    with pytest.raises(ValueError):
        inj.set_loss(2.0)
    with pytest.raises(ValueError):
        inj.set_corruption(-0.1)


def test_fault_schedule_at():
    sim, net, _ = make_net(8)
    inj = FaultInjector(sim, net)
    inj.at(us(100), inj.crash_node, 3)
    sim.run()
    assert 3 in net._dead_nics
    assert inj.log[-1][0] == us(100)


def test_packet_through_down_then_restored_spine():
    """Traffic keeps flowing across a hot-swap cycle (Section 3.2)."""
    sim, net, cfg = make_net(100)
    inj = FaultInjector(sim, net)
    got = []
    net.attach(0, lambda p: None)
    net.attach(99, lambda p: got.append(p.msg_id))
    for i in range(4):
        net.send(Packet(src_nic=0, dst_nic=99, kind=PacketType.DATA, channel=i, msg_id=i))
    inj.set_spine(1, up=False)
    for i in range(4, 8):
        net.send(Packet(src_nic=0, dst_nic=99, kind=PacketType.DATA, channel=i - 4, msg_id=i))
    sim.run()
    assert sorted(got) == list(range(8))
