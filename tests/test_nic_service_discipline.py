"""Deeper NI firmware tests: WRR loitering, driver interleave, staging bounds."""

import pytest

from repro.cluster import ClusterConfig
from repro.myrinet import Network
from repro.nic import DriverOp, EndpointState, Message, MessageState, MsgKind, Nic
from repro.sim import Event, Simulator, ms, us


def build(n=4, **kw):
    cfg = ClusterConfig(num_hosts=n, **kw)
    sim = Simulator()
    net = Network(sim, cfg)
    nics = [Nic(sim, cfg, i, net) for i in range(n)]
    return sim, cfg, net, nics


def add_ep(sim, nic, cfg, ep_id, tag, frame=None):
    ep = EndpointState(nic.nic_id, ep_id, send_ring_depth=cfg.send_ring_depth,
                       recv_queue_depth=cfg.recv_queue_depth, tag=tag)
    nic.driver_request(DriverOp("alloc", ep, Event(sim)))
    nic.driver_request(DriverOp("load", ep, Event(sim),
                                frame=frame if frame is not None else nic.free_frame_index()))
    return ep


def mk(src, dst, key, nbytes=16, bulk=False):
    return Message(src_node=src[0], src_ep=src[1], dst_node=dst[0], dst_ep=dst[1],
                   key=key, kind=MsgKind.REQUEST, payload_bytes=nbytes, is_bulk=bulk)


def test_loiter_bounds_burst_length():
    """With a loiter budget of 4, one endpoint's run length is bounded."""
    sim, cfg, net, nics = build(wrr_max_msgs=4)
    a1 = add_ep(sim, nics[0], cfg, 1, 10, frame=0)
    a2 = add_ep(sim, nics[0], cfg, 2, 11, frame=1)
    b1 = add_ep(sim, nics[1], cfg, 1, 20, frame=0)
    b2 = add_ep(sim, nics[1], cfg, 2, 21, frame=1)
    sim.run(until=ms(1))
    arrivals = []

    m1 = [mk((0, 1), (1, 1), 20) for _ in range(24)]
    m2 = [mk((0, 2), (1, 2), 21) for _ in range(24)]
    for x, y in zip(m1, m2):
        nics[0].host_enqueue_send(a1, x)
        nics[0].host_enqueue_send(a2, y)

    def drain():
        while True:
            got = nics[1].host_poll_recv(b1)
            if got:
                arrivals.append(1)
            got = nics[1].host_poll_recv(b2)
            if got:
                arrivals.append(2)
            yield sim.timeout(us(3))

    sim.spawn(drain())
    sim.run(until=ms(1) + us(800))
    assert len(arrivals) == 48
    # no run of a single endpoint longer than ~2x the loiter budget
    longest, cur, prev = 1, 1, arrivals[0]
    for v in arrivals[1:]:
        cur = cur + 1 if v == prev else 1
        prev = v
        longest = max(longest, cur)
    assert longest <= 10


def test_driver_op_progresses_under_receive_flood():
    """Driver endpoint service is interleaved (§5.3): a load completes
    even while another node floods this NI with traffic."""
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, 10)
    b = add_ep(sim, nics[1], cfg, 1, 20)
    sim.run(until=ms(1))

    # keep a continuous flood into b (refilled as messages resolve)
    outstanding = []

    def feeder():
        while sim.now < ms(30):
            while len([m for m in outstanding if m.state is MessageState.PENDING or m.state is MessageState.BOUND]) < 32:
                m = mk((0, 1), (1, 1), 20)
                if not nics[0].host_enqueue_send(a, m):
                    break
                outstanding.append(m)
            nics[1].host_poll_recv(b)  # drain so the queue never fills
            yield sim.timeout(us(20))

    sim.spawn(feeder())
    sim.run(until=ms(3))
    # now ask the flooded NI to load a second endpoint
    c = EndpointState(1, 2, send_ring_depth=cfg.send_ring_depth,
                      recv_queue_depth=cfg.recv_queue_depth, tag=33)
    nics[1].driver_request(DriverOp("alloc", c, Event(sim)))
    done = Event(sim, "load2")
    nics[1].driver_request(DriverOp("load", c, done, frame=nics[1].free_frame_index()))
    t0 = sim.now
    sim.run(until=ms(30))
    assert done.triggered
    assert c.resident


def test_rx_fifo_is_bounded():
    sim, cfg, net, nics = build()
    assert nics[0]._rx_store.capacity == cfg.ni_rx_fifo_packets


def test_bulk_reservations_respect_queue_bound():
    """Concurrent bulk arrivals never overcommit the receive queue."""
    sim, cfg, net, nics = build(recv_queue_depth=4, user_credits=4)
    a = add_ep(sim, nics[0], cfg, 1, 10)
    b = add_ep(sim, nics[1], cfg, 1, 20)
    sim.run(until=ms(1))
    msgs = [mk((0, 1), (1, 1), 20, nbytes=8192, bulk=True) for _ in range(10)]
    for m in msgs:
        nics[0].host_enqueue_send(a, m)
    max_seen = [0]

    def watch():
        while True:
            occupancy = len(b.recv_requests) + b.bulk_reserved_req
            max_seen[0] = max(max_seen[0], occupancy)
            yield sim.timeout(us(20))

    sim.spawn(watch())
    sim.run(until=ms(40))
    assert max_seen[0] <= 4
    delivered = sum(1 for m in msgs if m.state is MessageState.DELIVERED)
    assert delivered == 4  # queue full; the rest NACKed and retrying


def test_quiesce_blocks_new_sends_but_retransmits():
    """During quiescing no new messages leave the endpoint (§5.3)."""
    sim, cfg, net, nics = build(dead_timeout_ms=500.0)
    a = add_ep(sim, nics[0], cfg, 1, 10)
    b = add_ep(sim, nics[1], cfg, 1, 20)
    sim.run(until=ms(1))
    first = mk((0, 1), (1, 1), 999)  # bad key: will be returned eventually
    nics[0].host_enqueue_send(a, first)
    sim.run(until=ms(1) + us(10))
    # queue more messages, then request unload before they are serviced
    later = [mk((0, 1), (1, 1), 20) for _ in range(5)]
    for m in later:
        nics[0].host_enqueue_send(a, m)
    done = Event(sim, "unload")
    nics[0].driver_request(DriverOp("unload", a, done))
    sim.run(until=ms(40))
    assert done.triggered
    assert not a.resident
    # the queued messages were NOT sent while quiescing; they remain
    # pending in the (now host-resident) ring for the next residency
    assert all(m.state is MessageState.PENDING for m in later)
    assert len(a.send_ring) == 5


def test_make_resident_notify_deduplicated():
    """A NACK storm produces one make-resident request, not hundreds."""
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, 10)
    b = EndpointState(1, 1, send_ring_depth=cfg.send_ring_depth,
                      recv_queue_depth=cfg.recv_queue_depth, tag=20)
    nics[1].driver_request(DriverOp("alloc", b, Event(sim)))  # never loaded
    sim.run(until=ms(1))
    for _ in range(20):
        nics[0].host_enqueue_send(a, mk((0, 1), (1, 1), 20))
    sim.run(until=ms(6))
    assert nics[1].stats.nacks_sent  # NACKing happened
    assert nics[1].stats.make_resident_notifies == 1  # deduplicated


def test_meter_attributes_costs_by_operation():
    sim, cfg, net, nics = build()
    a = add_ep(sim, nics[0], cfg, 1, 10)
    b = add_ep(sim, nics[1], cfg, 1, 20)
    sim.run(until=ms(1))
    for _ in range(10):
        nics[0].host_enqueue_send(a, mk((0, 1), (1, 1), 20))
    sim.run(until=ms(5))
    tx_meter = nics[0].meter
    rx_meter = nics[1].meter
    assert tx_meter.count_by_op["send"] == 10
    assert rx_meter.count_by_op["recv"] >= 10
    assert rx_meter.count_by_op["errcheck"] >= 10  # the §6.1 1.1 us
    assert tx_meter.count_by_op["ack_proc"] == 10
