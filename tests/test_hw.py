"""Unit tests for the hardware models: CPU, SBus DMA, LANai meter."""

import pytest

from repro.cluster import ClusterConfig
from repro.hw import Cpu, LanaiMeter, SbusDma
from repro.sim import Simulator


# ------------------------------------------------------------------ Cpu
def test_cpu_single_thread_runs_at_full_speed():
    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=10_000_000)

    def body():
        yield from cpu.compute(5_000_000, owner="a")
        return sim.now

    assert sim.run_process(body()) == 5_000_000


def test_cpu_two_threads_timeshare_fairly():
    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=1_000)
    finish = {}

    def body(name):
        yield from cpu.compute(10_000, owner=name)
        finish[name] = sim.now

    sim.spawn(body("a"))
    sim.spawn(body("b"))
    sim.run()
    # Both need 10 us of CPU; interleaved they finish near 20 us.
    assert 19_000 <= finish["a"] <= 21_000
    assert 19_000 <= finish["b"] <= 21_000


def test_cpu_context_switch_charged_on_owner_change():
    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=1_000, context_switch_ns=100)

    def body(name):
        yield from cpu.compute(3_000, owner=name)

    sim.spawn(body("a"))
    sim.spawn(body("b"))
    sim.run()
    assert cpu.switches > 0
    # busy time = total work + one switch charge per owner change
    assert cpu.busy_ns == 6_000 + cpu.switches * 100


def test_cpu_zero_compute_is_free():
    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=1_000)

    def body():
        yield from cpu.compute(0, owner="a")
        return sim.now

    assert sim.run_process(body()) == 0


def test_cpu_utilization():
    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=10_000)

    def body():
        yield from cpu.compute(4_000, owner="a")
        yield sim.timeout(6_000)

    sim.run_process(body())
    assert abs(cpu.utilization() - 0.4) < 0.01


# ------------------------------------------------------------------ SBus
def test_sbus_transfer_times():
    cfg = ClusterConfig()
    sim = Simulator()
    dma = SbusDma(sim, cfg)

    def body():
        yield from dma.transfer(8192, SbusDma.WRITE)
        return sim.now

    t = sim.run_process(body())
    assert t == cfg.sbus_write_ns(8192)
    assert dma.bytes_written == 8192


def test_sbus_single_engine_serializes_directions():
    cfg = ClusterConfig()
    sim = Simulator()
    dma = SbusDma(sim, cfg)
    done = []

    def xfer(direction):
        yield from dma.transfer(4096, direction)
        done.append((sim.now, direction))

    sim.spawn(xfer(SbusDma.WRITE))
    sim.spawn(xfer(SbusDma.READ))
    sim.run()
    # One engine for both directions (Section 2): strictly sequential.
    assert done[1][0] == cfg.sbus_write_ns(4096) + cfg.sbus_read_ns(4096)


def test_sbus_hold_release_split():
    cfg = ClusterConfig()
    sim = Simulator()
    dma = SbusDma(sim, cfg)
    order = []

    def holder():
        yield dma.acquire()
        yield from dma.hold(1024, SbusDma.WRITE)
        yield sim.timeout(50_000)  # completion processing while held
        dma.release()
        order.append(("holder", sim.now))

    def waiter():
        yield sim.timeout(1)
        yield from dma.transfer(1024, SbusDma.READ)
        order.append(("waiter", sim.now))

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert order[0][0] == "holder"  # waiter blocked until release


def test_sbus_rejects_negative_size():
    sim = Simulator()
    dma = SbusDma(sim, ClusterConfig())

    def body():
        try:
            yield from dma.transfer(-1, SbusDma.READ)
        except ValueError:
            return "rejected"

    assert sim.run_process(body()) == "rejected"


def test_sbus_unknown_direction():
    dma = SbusDma(Simulator(), ClusterConfig())
    with pytest.raises(ValueError):
        dma.transfer_ns(10, "sideways")


# ----------------------------------------------------------------- LANai
def test_lanai_meter_accumulates_by_category():
    cfg = ClusterConfig()
    meter = LanaiMeter(cfg)
    ns1 = meter.cost_ns("send", 100)
    ns2 = meter.cost_ns("send", 100)
    meter.cost_ns("recv", 50)
    assert ns1 == ns2 == cfg.lanai_ns(100)
    assert meter.count_by_op["send"] == 2
    assert meter.total_ns == 2 * ns1 + cfg.lanai_ns(50)
    assert meter.mean_ns("send") == ns1
    assert meter.mean_ns("missing") == 0.0
    assert set(meter.snapshot()) == {"send", "recv"}
