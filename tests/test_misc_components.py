"""Tests for the smaller components: NameService, UserProcess, clocks, meters."""

import pytest

from repro.am import NameService, new_endpoint
from repro.cluster import Cluster, ClusterConfig
from repro.nic import LamportClock, Residency
from repro.sim import ms


# -------------------------------------------------------------- NameService
def test_nameservice_register_lookup():
    ns = NameService()
    ns.register("fileserver", (3, 7), key=123)
    assert ns.lookup("fileserver") == ((3, 7), 123)
    assert ns.lookup("nothing") is None
    assert ns.labels() == ["fileserver"]


def test_nameservice_duplicate_rejected():
    ns = NameService()
    ns.register("x", (0, 1), 1)
    with pytest.raises(ValueError):
        ns.register("x", (0, 2), 2)
    ns.unregister("x")
    ns.register("x", (0, 2), 2)  # fine after unregister


def test_nameservice_rendezvous_end_to_end():
    """Names are opaque and obtainable by any rendezvous mechanism (§3.1)."""
    cluster = Cluster(ClusterConfig(num_hosts=2))
    ns = NameService()
    server_ep = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "s")
    ns.register("service", server_ep.name, server_ep.tag)
    client_ep = cluster.run_process(new_endpoint(cluster.node(1), rngs=cluster.rngs), "c")
    name, key = ns.lookup("service")
    client_ep.map(0, name, key)
    got = []

    def client(thr):
        yield from client_ep.request(thr, 0, lambda tok: got.append(1))
        for _ in range(3000):
            yield from client_ep.poll(thr)
            if client_ep.credits_available(0) == cluster.cfg.user_credits:
                break
            yield from thr.compute(2_000)

    def server(thr):
        while not got:
            yield from server_ep.poll(thr)
            yield from thr.compute(2_000)

    cluster.node(0).start_process().spawn_thread(server)
    cluster.node(1).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(200))
    assert got == [1]


# -------------------------------------------------------------- UserProcess
def test_process_terminate_frees_endpoints():
    """Process termination releases endpoint segments (Section 4.2)."""
    cluster = Cluster(ClusterConfig(num_hosts=2))
    node = cluster.node(0)
    proc = node.start_process("app")
    ep = cluster.run_process(new_endpoint(node, rngs=cluster.rngs), "e")
    proc.adopt_endpoint(ep.state)

    def worker(thr):
        while True:
            yield from thr.sleep(ms(1))

    proc.spawn_thread(worker)
    cluster.run(until=cluster.sim.now + ms(5))
    cluster.run_process(proc.terminate(), "term")
    assert proc.terminated
    assert ep.state.residency is Residency.FREED
    assert ep.state.ep_id not in node.nic.endpoints
    with pytest.raises(RuntimeError):
        proc.spawn_thread(worker)


# ------------------------------------------------------------ Lamport clock
def test_lamport_clock_semantics():
    a, b = LamportClock(), LamportClock()
    t1 = a.tick()
    t2 = a.tick()
    assert t2 == t1 + 1
    t3 = b.observe(t2)
    assert t3 > t2  # receive moves past the sender's stamp
    a.observe(t3)
    assert a.time > t3 - 1


def test_lamport_clock_orders_driver_nic_events():
    """Driver op clocks strictly increase across a request/notify cycle."""
    cluster = Cluster(ClusterConfig(num_hosts=2))
    nic = cluster.node(0).nic
    stamps = [nic.clock.tick() for _ in range(3)]
    assert stamps == sorted(stamps)
    merged = nic.clock.observe(stamps[-1] + 10)
    assert merged == stamps[-1] + 11


# ------------------------------------------------------- endpoint state misc
def test_endpoint_state_counts_and_repr():
    from repro.nic import EndpointState

    ep = EndpointState(0, 1, send_ring_depth=4, recv_queue_depth=2, tag=9)
    assert ep.send_ring_free() == 4
    assert ep.recv_room(False) and ep.recv_room(True)
    assert ep.total_queued() == 0
    assert "EP (0,1)" in repr(ep)
    ep.bulk_reserved_req = 2
    assert not ep.recv_room(False)
    assert ep.recv_room(True)


def test_translation_table_rejects_negative_index():
    from repro.nic import EndpointState

    ep = EndpointState(0, 1, send_ring_depth=4, recv_queue_depth=2)
    with pytest.raises(ValueError):
        ep.map_translation(-1, 0, 0, 0)
    ep.map_translation(3, 1, 2, 99)
    assert ep.translation[3].key == 99
    ep.unmap_translation(3)
    assert 3 not in ep.translation
    ep.unmap_translation(3)  # idempotent
