"""The struct-of-arrays endpoint store (DESIGN.md §15).

``EndpointTable`` keeps every per-endpoint scalar in parallel
``array('i')``/``array('q')`` columns indexed by integer row, with
``EndpointState`` surviving as a thin flyweight view.  These tests pin
the three properties the refactor must hold:

* **Layout** — no instance ``__dict__`` anywhere on the per-endpoint
  path, and a measured per-row footprint small enough that 10^5
  endpoints fit the fleet budget (the memory-regression gate);
* **Coherence** — a flyweight's properties and the raw columns are the
  same storage: writes through either side are visible on the other,
  ``frame_rows`` mirrors frame occupancy, and the send ring mirrors its
  occupancy into the ``ring_used`` column;
* **Bit-determinism** — the integer-indexed victim-selection path
  produces the exact digests the object-based build produced, per
  policy (pinned below; BENCH_SCALE.json pins the full-size sweep).
"""

import sys

import pytest

from repro.nic.endpoint_state import (
    F_REFERENCED,
    EndpointState,
    EndpointStats,
    EndpointTable,
    Residency,
    TranslationEntry,
)
from repro.scale import ScaleCellConfig, run_cell


def make_ep(table=None, ep_id=0, **kw):
    kw.setdefault("send_ring_depth", 4)
    kw.setdefault("recv_queue_depth", 4)
    return EndpointState(node=0, ep_id=ep_id, table=table, **kw)


# ------------------------------------------------------------------ layout
def test_no_dict_on_per_endpoint_path():
    table = EndpointTable(node=0, frames=2)
    ep = make_ep(table)
    for obj in (ep, ep.stats, table,
                TranslationEntry(dst_node=0, dst_ep=0, key=1)):
        assert not hasattr(obj, "__dict__"), type(obj).__name__
    with pytest.raises(AttributeError):
        ep.not_a_slot = 1


def test_memory_footprint_per_row():
    """The SoA budget: growing a table 256 rows must cost hundreds of
    bytes per endpoint, not the multiple KiB of the object layout."""
    table = EndpointTable(node=0, frames=8)
    for i in range(256):
        table.add_row(i)
    per_row = table.bytes_per_row()
    assert per_row < 512, f"{per_row:.0f} B/row blows the fleet budget"
    # the columns themselves (without flyweights) are what the fleet
    # sweep instantiates: far smaller still
    cols = table.nbytes() - sum(
        sys.getsizeof(v) for v in table.views if v is not None)
    assert cols / len(table) < 256


def test_translation_entry_slots():
    te = TranslationEntry(dst_node=3, dst_ep=16, key=4)
    assert (te.dst_node, te.dst_ep, te.key) == (3, 16, 4)
    with pytest.raises(AttributeError):
        te.extra = 1


# --------------------------------------------------------------- coherence
def test_flyweight_and_columns_are_same_storage():
    table = EndpointTable(node=0, frames=2)
    ep = make_ep(table, ep_id=7)
    row = ep.row
    assert table.views[row] is ep
    assert table.ep_id[row] == 7

    ep.residency = Residency.ONNIC_RW
    ep.generation = 5
    ep.last_active_ns = 123_456
    ep.referenced = True
    assert table.gen[row] == 5
    assert table.last_active[row] == 123_456
    assert table.flags[row] & F_REFERENCED
    assert ep.resident

    table.gen[row] = 9
    table.flags[row] &= ~F_REFERENCED
    assert ep.generation == 9
    assert not ep.referenced

    ep.frame = 1
    assert table.frame[row] == 1
    ep.frame = None
    assert table.frame[row] == -1


def test_stats_live_in_columns():
    table = EndpointTable(node=0, frames=2)
    ep = make_ep(table)
    ep.stats.enqueued += 3
    ep.stats.consumed += 1
    assert table.st_enqueued[ep.row] == 3
    assert table.st_consumed[ep.row] == 1
    # standalone stats (no endpoint) still work, on a private table
    s = EndpointStats()
    s.send_ring_full += 2
    assert s.send_ring_full == 2


def test_send_ring_mirrors_ring_used_column():
    table = EndpointTable(node=0, frames=2)
    ep = make_ep(table)
    r = ep.send_ring
    r.append("a")
    r.append("b")
    assert table.ring_used[ep.row] == 2
    r.popleft()
    assert table.ring_used[ep.row] == 1
    r.extend(["c", "d"])
    assert table.ring_used[ep.row] == 3
    r.remove("c")
    assert table.ring_used[ep.row] == 2
    r.clear()
    assert table.ring_used[ep.row] == 0
    assert ep.send_ring_free() == ep.send_ring_depth


def test_adopt_migrates_row_between_tables():
    """Tests (and the AM layer) build endpoints standalone, then hand
    them to a NIC: ``adopt`` must move the whole row, rebind the
    flyweight, and be idempotent."""
    ep = make_ep(None, ep_id=3)  # private single-row table
    private = ep.table
    ep.generation = 4
    ep.stats.enqueued = 11
    ep.send_ring.append("x")

    nic_table = EndpointTable(node=1, frames=4)
    row = nic_table.adopt(ep)
    assert ep.table is nic_table and ep.row == row
    assert nic_table.views[row] is ep
    assert nic_table.ep_id[row] == 3
    assert nic_table.gen[row] == 4
    assert nic_table.st_enqueued[row] == 11
    assert nic_table.ring_used[row] == 1
    assert ep.send_ring.table is nic_table
    assert private.views[0] is None  # old row detached
    assert nic_table.adopt(ep) == row  # idempotent


def test_frame_rows_mirror_and_resident_count():
    table = EndpointTable(node=0, frames=2)
    eps = [make_ep(table, ep_id=i) for i in range(3)]
    assert table.resident_count() == 0
    eps[0].residency = Residency.ONNIC_RW
    eps[0].frame = 0
    table.frame_rows[0] = eps[0].row
    assert table.resident_count() == 1
    table.ensure_frames(5)
    assert len(table.frame_rows) == 5
    assert table.frame_rows[4] == -1


# ---------------------------------------------------------- determinism
#: tiny-but-real cell (mirrors test_scale_policies.TINY), seed 11
_TINY = dict(ratio=4, endpoint_frames=2, client_nodes=2,
             duration_ms=10.0, warmup_ms=5.0, seed=11)

#: digests captured from the pre-SoA object-based build — the
#: integer-indexed victim path must reproduce them bit for bit
_PINNED = {
    "random": "a85008f6dac5782a1fbdd8314715bf59654cac57cc13d4cf79b60892983640b5",
    "lru": "057edde0df65ca71a2f1887d8b73c3cf7bdbcbd02e06d268f47274891e8553e6",
    "clock": "d74e55ee454e685d2e5e2aac05c2cc2693c470f18bf965e33787e13322f50399",
    "active-preference": "01cc26a94c0b2d477721f94cbc1044ef4ee0403f678dd04f8d77525a33a4a929",
}


@pytest.mark.parametrize("policy", sorted(_PINNED))
def test_integer_indexed_policies_reproduce_object_build_digests(policy):
    res = run_cell(ScaleCellConfig(policy=policy, **_TINY))
    assert res.completed > 0
    assert res.digest == _PINNED[policy], (
        f"{policy}: SoA victim path diverged from the object-based build"
    )
