"""Tests for the sockets-style stream layer over Active Messages."""

import pytest

from repro.am import NameService
from repro.cluster import Cluster, ClusterConfig
from repro.lib.streams import SEGMENT_BYTES, stream_connect, stream_listen
from repro.sim import ms


def build(n=4, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def run_client_server(cluster, server_body, client_body, until_ms=3_000):
    names = NameService()
    listener = cluster.run_process(stream_listen(cluster, 0, "svc", names), "listen")
    st = cluster.node(0).start_process().spawn_thread(
        lambda thr: server_body(thr, listener)
    )
    ct = cluster.node(1).start_process().spawn_thread(
        lambda thr: client_body(thr, names)
    )
    cluster.run(until=cluster.sim.now + ms(until_ms))
    assert st.finished, "server hung"
    assert ct.finished, "client hung"
    return st.result, ct.result


def test_stream_echo_roundtrip():
    cluster = build()

    def server(thr, listener):
        sock = yield from listener.accept(thr, cluster)
        data = yield from sock.recv_exact(thr, 11)
        yield from sock.send(thr, data.upper())
        yield from sock.close(thr)
        return data

    def client(thr, names):
        sock = yield from stream_connect(thr, cluster, 1, "svc", names)
        yield from sock.send(thr, b"hello world")
        reply = yield from sock.recv_exact(thr, 11)
        yield from sock.close(thr)
        return reply

    got, reply = run_client_server(cluster, server, client)
    assert got == b"hello world"
    assert reply == b"HELLO WORLD"


def test_stream_large_transfer_ordered():
    cluster = build()
    total = SEGMENT_BYTES * 5 + 1234
    payload = bytes(i % 251 for i in range(total))

    def server(thr, listener):
        sock = yield from listener.accept(thr, cluster)
        data = yield from sock.recv_exact(thr, total)
        return data

    def client(thr, names):
        sock = yield from stream_connect(thr, cluster, 1, "svc", names)
        yield from sock.send(thr, payload)
        yield from sock.close(thr)
        return sock.bytes_sent

    data, sent = run_client_server(cluster, server, client, until_ms=6_000)
    assert sent == total
    assert data == payload  # byte-exact, in order


def test_stream_close_yields_eof():
    cluster = build()

    def server(thr, listener):
        sock = yield from listener.accept(thr, cluster)
        chunks = []
        while True:
            chunk = yield from sock.recv(thr, 65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)

    def client(thr, names):
        sock = yield from stream_connect(thr, cluster, 1, "svc", names)
        yield from sock.send(thr, b"bye")
        yield from sock.close(thr)
        return None

    data, _ = run_client_server(cluster, server, client)
    assert data == b"bye"


def test_stream_connect_unknown_label():
    cluster = build()
    names = NameService()

    def client(thr):
        try:
            yield from stream_connect(thr, cluster, 1, "ghost", names)
        except ConnectionError:
            return "refused"

    t = cluster.node(1).start_process().spawn_thread(client)
    cluster.run(until=cluster.sim.now + ms(50))
    assert t.result == "refused"


def test_stream_survives_packet_loss():
    cluster = build(packet_loss_prob=0.1, dead_timeout_ms=800.0)
    total = SEGMENT_BYTES * 3
    payload = bytes(i % 256 for i in range(total))

    def server(thr, listener):
        sock = yield from listener.accept(thr, cluster)
        data = yield from sock.recv_exact(thr, total)
        return data

    def client(thr, names):
        sock = yield from stream_connect(thr, cluster, 1, "svc", names)
        yield from sock.send(thr, payload)
        yield from sock.close(thr)
        return None

    data, _ = run_client_server(cluster, server, client, until_ms=10_000)
    assert data == payload


def test_two_concurrent_connections():
    cluster = build(6)
    names = NameService()
    listener = cluster.run_process(stream_listen(cluster, 0, "svc", names), "listen")
    results = {}

    def server(thr):
        socks = []
        for _ in range(2):
            sock = yield from listener.accept(thr, cluster)
            socks.append(sock)
        for i, sock in enumerate(socks):
            data = yield from sock.recv_exact(thr, 4)
            results[f"conn{i}"] = data

    def make_client(node_id, tag):
        def client(thr):
            sock = yield from stream_connect(thr, cluster, node_id, "svc", names)
            yield from sock.send(thr, tag)
            yield from sock.close(thr)

        return client

    cluster.node(0).start_process().spawn_thread(server)
    cluster.node(1).start_process().spawn_thread(make_client(1, b"AAAA"))
    cluster.node(2).start_process().spawn_thread(make_client(2, b"BBBB"))
    cluster.run(until=cluster.sim.now + ms(4_000))
    assert sorted(results.values()) == [b"AAAA", b"BBBB"]
