"""Cross-engine collective conformance suite.

The three collective strategies — ``host`` (dissemination/binomial over
AM), ``firmware`` (NI-forwarded k-ary spanning trees), ``express`` (the
same up tree, down phase as one fabric multicast) — must agree on
*semantics* while differing only in cost:

* barrier is a true synchronization point (no rank's post-barrier
  message is delivered before every rank arrived);
* broadcast delivers the root payload exactly once per rank, in order;
* reduce matches a pure-Python fold for every firmware combine op;
* each (strategy, engine) cell is bit-deterministic, and the three
  engines (sequential / reference / sharded-at-one) produce identical
  digests for the same strategy;
* express-tree and host-tree *paths* are unobservable: the express
  multicast machinery must be bit-equal to the wormhole twin on every
  mode-invariant stat (mirroring the express-path equivalence tests);
* faults demote, never deadlock: a crashed tree node bounds every
  survivor at :class:`~repro.nic.collective.CollectiveTimeout`, and
  ``crash``/``reboot`` drop the per-(root, vnet) tree state in NI SRAM
  so a rebooted NI cannot forward stale collective edges.
"""

import functools
import hashlib
import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.lib.mpi import build_world
from repro.nic.collective import COMBINE_OPS, CollectiveTimeout
from repro.sim import ms

STRATEGIES = ("host", "firmware", "express")
ENGINES = ("sequential", "reference", "sharded")
OPS = ("barrier", "bcast", "reduce")


def run_world(nranks, main, *, strategy="firmware", engine=None,
              nodes=None, until_ms=3_000, **cfg_kw):
    """Build a cluster + MPI world, spawn ``main`` per rank, run to done."""
    nodes = list(range(nranks)) if nodes is None else list(nodes)
    cfg = ClusterConfig(num_hosts=max(2, max(nodes) + 1),
                        collective_strategy=strategy, **cfg_kw)
    cluster = Cluster(cfg, engine=engine)
    world = cluster.run_process(build_world(cluster, nodes), "mpi")
    threads = world.spawn(main)
    cluster.run(until=cluster.sim.now + ms(until_ms))
    for t in threads:
        assert t.finished, f"{t.name} did not finish (deadlocked collective?)"
    return cluster, [t.result for t in threads]


def _digest(records):
    h = hashlib.sha256()
    for rank in sorted(records):
        h.update(repr((rank, records[rank])).encode())
    return h.hexdigest()


def _conformance_main(records, nranks):
    """One barrier + bcast + reduce per rank, timestamps recorded."""

    def main(thr, comm):
        out = []
        yield from comm.barrier(thr)  # align before measuring
        for op in OPS:
            t0 = comm.world.sim.now
            if op == "barrier":
                result = yield from comm.barrier(thr)
            elif op == "bcast":
                result = yield from comm.bcast(
                    thr, 1, 512, ("blob", nranks) if comm.rank == 1 else None)
            else:
                result = yield from comm.reduce(thr, 0, comm.rank + 1, "sum", 8)
            out.append((op, t0, comm.world.sim.now, result))
        records[comm.rank] = out

    return main


def _check_semantics(records, nranks):
    for r in range(nranks):
        assert records[r][1][3] == ("blob", nranks)
    assert records[0][2][3] == nranks * (nranks + 1) // 2
    assert all(records[r][2][3] is None for r in range(1, nranks))


# ----------------------------------------------- the strategy x engine matrix
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_conformance_matrix_engines_digest_identical(strategy):
    """Every engine runs the same collective program bit-identically:
    the sharded engine degrades to the monolithic kernel at one shard,
    the reference engine is the pre-optimization ordering oracle — a
    digest split would mean a strategy leaks kernel-dependent order."""
    nranks = 6
    digests = {}
    for engine in ENGINES:
        records = {}
        run_world(nranks, _conformance_main(records, nranks),
                  strategy=strategy, engine=engine)
        _check_semantics(records, nranks)
        digests[engine] = _digest(records)
    assert len(set(digests.values())) == 1, digests

    # per-cell determinism: a second sequential run reproduces the digest
    records = {}
    run_world(nranks, _conformance_main(records, nranks), strategy=strategy)
    assert _digest(records) == digests["sequential"]


# ------------------------------------------------------- barrier semantics
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_barrier_is_synchronization_point(strategy):
    """No rank's post-barrier message is delivered before every rank
    arrived: ranks stagger in by 1 ms each, then everyone sends to rank
    0 — whose receives must all land after the last arrival."""
    nranks = 5
    arrivals = {}
    recv_times = []

    def main(thr, comm):
        yield from thr.sleep(comm.rank * 1_000_000)
        arrivals[comm.rank] = comm.world.sim.now
        yield from comm.barrier(thr)
        exits = comm.world.sim.now
        if comm.rank:
            yield from comm.send(thr, 0, "post", 8, payload=comm.rank)
        else:
            for _ in range(nranks - 1):
                yield from comm.recv(thr, -1, "post")
                recv_times.append(comm.world.sim.now)
        return exits

    _, exits = run_world(nranks, main, strategy=strategy)
    last_arrival = max(arrivals.values())
    assert min(exits) >= last_arrival
    assert all(t >= last_arrival for t in recv_times)


# ----------------------------------------------------- broadcast semantics
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bcast_exactly_once_in_order(strategy):
    """Back-to-back broadcasts deliver each root payload exactly once
    per rank, in program order — no duplicate or reordered tree edge."""
    nranks, rounds, root = 6, 4, 2

    def main(thr, comm):
        got = []
        for k in range(rounds):
            payload = ("round", k) if comm.rank == root else None
            got.append((yield from comm.bcast(thr, root, 256, payload)))
        return got

    _, results = run_world(nranks, main, strategy=strategy)
    expected = [("round", k) for k in range(rounds)]
    assert results == [expected] * nranks


# -------------------------------------------------------- reduce semantics
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("op_name", sorted(COMBINE_OPS))
def test_reduce_matches_pure_python_fold(strategy, op_name):
    nranks, root = 5, 1
    values = [rank + 2 for rank in range(nranks)]

    def main(thr, comm):
        return (yield from comm.reduce(thr, root, values[comm.rank], op_name, 8))

    _, results = run_world(nranks, main, strategy=strategy)
    expected = functools.reduce(COMBINE_OPS[op_name], values)
    assert results[root] == expected
    assert all(results[r] is None for r in range(nranks) if r != root)


# --------------------------------------------------- property-based sweep
@pytest.mark.parametrize("seed", range(20))
def test_property_random_membership_and_express_equivalence(seed):
    """Random membership subsets, random roots/ops, concurrent
    point-to-point background traffic: collectives complete and never
    deadlock, and the express multicast path is unobservable — the
    express-on and express-off runs of the *same* express-tree program
    are bit-equal on results, timestamps, and network stats."""
    rng = random.Random(seed)
    num_hosts = 8
    nranks = rng.randint(3, 6)
    nodes = sorted(rng.sample(range(num_hosts), nranks))
    rounds = [(rng.choice(OPS), rng.randrange(nranks)) for _ in range(3)]

    def make_main(records):
        def main(thr, comm):
            out = []
            for i, (op, root) in enumerate(rounds):
                # background p2p crossing the collective in flight
                yield from comm.send(thr, (comm.rank + 1) % nranks,
                                     f"bg{i}", 16, payload=(comm.rank, i))
                if op == "barrier":
                    result = yield from comm.barrier(thr)
                elif op == "bcast":
                    result = yield from comm.bcast(
                        thr, root, 128,
                        ("p", i) if comm.rank == root else None)
                else:
                    result = yield from comm.reduce(
                        thr, root, comm.rank + i + 1, "sum", 8)
                _, _, bg, _ = yield from comm.recv(
                    thr, (comm.rank - 1) % nranks, f"bg{i}")
                out.append((op, comm.world.sim.now, result, bg))
            records[comm.rank] = out
        return main

    stats = {}
    recs = {}
    for express in (True, False):
        records = {}
        cluster, _ = run_world(nranks, make_main(records), strategy="express",
                               nodes=nodes, express_path=express)
        recs[express] = records
        stats[express] = dict(vars(cluster.network.stats))
    assert recs[True] == recs[False]
    assert stats[True] == stats[False]


# ------------------------------------------------- sharded kernel crossing
def test_sharded_collective_scenario_crosses_trunk_digest_identical():
    """The sharded 'collective' scenario fans out across the shard
    boundary: cross-shard tree edges traverse the trunk, and the
    windowed executor reproduces the shared-heap baseline bit-for-bit."""
    from repro.sim.sharded import ShardedSimulator

    cfg = ClusterConfig(num_hosts=8, num_shards=2, seed=3, engine="sharded")
    ss = ShardedSimulator(cfg, scenario="collective",
                          params=dict(waves=3, stagger_ns=4_000, pad_ns=12_000))
    seq = ss.run("sequential")
    win = ss.run("inprocess")
    assert win.checks == seq.checks
    assert any(rec[0] == "T" for rec in win.deliveries), \
        "no cross-shard tree edge traversed the trunk"


# ----------------------------------------------------------- chaos coverage
def test_collective_storm_chaos_contract():
    """The collective_storm family against the collective workload: link
    flaps and NI crashes mid-collective, yet the delivery contract holds
    and every timed-out collective is a clean CollectiveTimeout."""
    from repro.chaos import ScheduleGenerator, run_chaos

    for seed in (1, 2):
        gen = ScheduleGenerator(seed, num_hosts=8, num_spines=2,
                                num_procs=4, num_eps=4)
        report = run_chaos(gen.generate("collective_storm"), "collective",
                           keep=True)
        assert report.ok, report.violations
        wl = report.workload
        assert wl.coll_completed + wl.coll_timeouts > 0


def test_mid_flight_fault_demotes_express_multicast():
    """A fault injected while an express multicast flight is committed
    must demote it to the store-and-forward twin without shifting any
    delivery — the PR-5 revocation rule extended to fan-outs."""
    from repro.myrinet import FaultInjector, Network, Packet, PacketType
    from repro.sim import Simulator

    def drive(express):
        cfg = ClusterConfig(num_hosts=8, express_path=express)
        sim = Simulator()
        net = Network(sim, cfg)
        log = []
        for i in range(8):
            net.attach(i, lambda p: log.append((sim.now, p.dst_nic, p.msg_id)))
        dsts = [d for d in range(8) if d != 0]
        sim.schedule(0, net.send_multicast, 0, dsts,
                     lambda d: Packet(0, d, PacketType.DATA,
                                      payload_bytes=512, msg_id=d))
        fi = FaultInjector(sim, net)
        sim.schedule(600, fi.set_corruption, 0.0)  # benign, mid-flight
        sim.run()
        return net, sorted(log)

    net1, log1 = drive(True)
    net2, log2 = drive(False)
    assert net1.express.mcast_commits == 1
    assert net1.express.mcast_revoked == 1
    assert log1 == log2 and len(log1) == 7
    ledger = lambda n: {l.name: (l.bytes_carried, l.packets_carried, l.busy_ns)
                        for l in n.topology.all_links}
    assert ledger(net1) == ledger(net2)


def test_link_flap_mid_broadcast_demotes_and_delivers():
    """A link flap while the broadcast's express multicast flight is in
    the air: the fault demotes the flight (revocation + wormhole
    replay), and every rank still receives the payload exactly once.
    The flapped link is off the tree route, so demotion — not loss — is
    what the protocol must survive; a severed tree edge is the
    CollectiveTimeout case covered by the chaos storm."""
    nranks = 6
    cfg = ClusterConfig(num_hosts=8, collective_strategy="express")
    cluster = Cluster(cfg)
    world = cluster.run_process(build_world(cluster, list(range(nranks))), "mpi")
    net = cluster.network

    def flapper():
        # wait for the down-phase fan-out to commit, then flap host
        # link 7 (no rank lives there) while the flight is in the air
        while net.express.mcast_commits == 0:
            yield cluster.sim.timeout(200)
        cluster.faults.set_host_link(7, False)
        yield cluster.sim.timeout(30_000)
        cluster.faults.set_host_link(7, True)

    cluster.sim.spawn(flapper(), name="flapper")

    def main(thr, comm):
        payload = "storm" if comm.rank == 0 else None
        return (yield from comm.bcast(thr, 0, 1024, payload))

    threads = world.spawn(main)
    cluster.run(until=cluster.sim.now + ms(100))
    for t in threads:
        assert t.finished, f"{t.name} did not finish"
    assert [t.result for t in threads] == ["storm"] * nranks
    assert net.express.mcast_commits >= 1
    assert net.express.mcast_revoked >= 1


def test_crash_at_root_times_out_survivors():
    """Crash-at-root regression: the root NI dies before completing the
    tree; every survivor gets CollectiveTimeout — never a deadlock."""
    nranks = 4

    def main(thr, comm):
        if comm.rank == 0:
            yield from thr.sleep(ms(5))  # root never joins
            return "root"
        try:
            yield from comm.barrier(thr)
            return "completed"
        except CollectiveTimeout:
            return "timeout"

    def body(thr, comm):
        if comm.rank == 0:
            comm.world.sim.schedule(10_000, comm.world.cluster.crash_node, 0)
        return (yield from main(thr, comm))

    _, results = run_world(nranks, body, strategy="firmware",
                           coll_timeout_ms=0.5, until_ms=100)
    assert results[0] == "root"
    assert results[1:] == ["timeout"] * (nranks - 1)


def test_crash_and_reboot_drop_tree_state():
    """Regression for the PR-5 re-attach leak class: crash and firmware
    reboot must drop the per-(root, vnet) spanning-tree state held in NI
    SRAM, fail pending ops promptly, and a rebooted NI must rebuild its
    trees fresh rather than forward stale collective edges."""
    nranks = 4
    phases = {}

    def main(thr, comm):
        sim = comm.world.sim
        yield from comm.barrier(thr)  # populates trees on every NI
        if comm.rank == 0:
            phases["trees"] = {
                r: dict(comm.world.cluster.node(r).nic.coll.trees)
                for r in range(nranks)}
            sim.schedule(5_000, comm.world.cluster.crash_node, 2)
            sim.schedule(500_000, comm.world.cluster.reboot_node, 2)
        yield from thr.sleep(ms(1))  # crash + reboot both behind us
        if comm.rank == 0:
            nic2 = comm.world.cluster.node(2).nic
            phases["after_crash"] = (dict(nic2.coll.trees),
                                     dict(nic2.coll.pending))
        # after the reboot, fresh full-world collectives must complete
        yield from comm.barrier(thr)
        result = yield from comm.reduce(thr, 0, comm.rank + 1, "sum", 8)
        return result

    _, results = run_world(nranks, main, strategy="firmware",
                           coll_timeout_ms=5.0, until_ms=100)
    # every NI cached at least one spanning tree after the first barrier
    assert all(phases["trees"][r] for r in range(nranks))
    # crash dropped both the tree cache and the pending-op table, and
    # the reboot did not resurrect them
    assert phases["after_crash"] == ({}, {})
    # and the rebooted NI joined fresh collectives correctly
    assert results[0] == nranks * (nranks + 1) // 2


def test_rebooted_nic_pending_op_fails_fast():
    """An op pending on the crashing NI itself is failed by reset() at
    crash time — the host waiter wakes immediately with the abort, well
    before the timeout deadline."""
    nranks = 2

    def main(thr, comm):
        sim = comm.world.sim
        if comm.rank == 1:
            yield from thr.sleep(ms(40))
            return "peer"
        sim.schedule(20_000, comm.world.cluster.crash_node, 0)
        t0 = sim.now
        try:
            # rank 1 never joins: the op stays pending on NI 0 until the
            # crash resets it
            yield from comm.endpoint.collective(
                thr, "barrier", 77, (0, 1), 0, strategy="firmware")
            return "completed"
        except CollectiveTimeout as e:
            assert "aborted" in str(e)
            return ("aborted", sim.now - t0)

    _, results = run_world(nranks, main, strategy="firmware",
                           coll_timeout_ms=30.0, until_ms=200)
    kind, waited_ns = results[0]
    assert kind == "aborted"
    # failed at the crash (~20 us in), not at the 30 ms timeout
    assert waited_ns < ms(1)
