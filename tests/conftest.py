"""Test-suite configuration.

Hypothesis deadlines are disabled: property tests run whole simulations,
whose wallclock varies with machine load even though the *simulated*
behaviour is deterministic.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
