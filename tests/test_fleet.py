"""The fleet-scale overcommit macro-model (``repro.scale.fleet``).

Tiny cells here; the committed ``BENCH_FLEET.json`` holds the full
(hosts × ratio × policy) grid.  What must hold at any size:

* **Determinism** — the same cell config produces a bit-identical
  digest on every run, and different seeds diverge;
* **Graceful degradation** — no cell ever reaches zero goodput, even at
  the diurnal trough of a heavily overcommitted fleet (the paper's
  central scaling claim at fleet shape);
* **Memory** — a 10^5-endpoint fleet's endpoint state fits the
  documented tracemalloc budget, because every NI uses the
  struct-of-arrays :class:`~repro.nic.endpoint_state.EndpointTable`;
* **Arrival shapes** — the registered models produce the intended
  intensity envelopes (diurnal trough, bursty duty cycle).
"""

import pytest

from repro.scale import (
    ARRIVAL_MODELS,
    DEFAULT_FLEET_POLICIES,
    FleetCellConfig,
    run_fleet_cell,
    run_fleet_sweep,
)
from repro.scale.fleet import MEMCHECK_BUDGET_MB, MEMCHECK_CELL, run_memcheck

#: small-but-real fleet: 4 hosts x 1 NI x 4 frames at 8:1 overcommit
TINY = dict(hosts=4, nis_per_host=1, endpoint_frames=4, ratio=8, ticks=48)


@pytest.mark.parametrize("policy", DEFAULT_FLEET_POLICIES)
def test_fleet_cell_is_deterministic_per_policy(policy):
    cfg = FleetCellConfig(policy=policy, **TINY)
    a = run_fleet_cell(cfg)
    b = run_fleet_cell(cfg)
    assert a.completed > 0, "tiny fleet made no progress"
    assert a.digest == b.digest
    assert (a.completed, a.remaps, a.evictions, a.tick_goodput_min) == \
           (b.completed, b.remaps, b.evictions, b.tick_goodput_min)


def test_different_seeds_diverge():
    a = run_fleet_cell(FleetCellConfig(seed=1, **TINY))
    b = run_fleet_cell(FleetCellConfig(seed=2, **TINY))
    assert a.digest != b.digest


@pytest.mark.parametrize("arrival", sorted(ARRIVAL_MODELS))
def test_never_zero_goodput_across_arrival_models(arrival):
    """Graceful degradation at the fleet's worst moment: after warmup,
    no single tick may serve zero messages, whatever the arrival shape.
    The floor leans on per-host phase spreading (a bursty fleet keeps a
    quarter of its hosts on-duty at any instant), so this needs fleet
    shape — 16 hosts — not the 4-host micro cell."""
    res = run_fleet_cell(FleetCellConfig(
        arrival=arrival, hosts=16, nis_per_host=1,
        endpoint_frames=4, ratio=16, ticks=48))
    assert res.completed > 0
    assert res.tick_goodput_min > 0, (
        f"{arrival}: fleet collapsed to zero goodput in some tick"
    )


def test_overcommit_pressure_shows_up_as_remap_work():
    lo = run_fleet_cell(FleetCellConfig(policy="lru", **{
        **TINY, "ratio": 1}))
    hi = run_fleet_cell(FleetCellConfig(policy="lru", **{
        **TINY, "ratio": 32}))
    assert lo.evictions == 0  # 1:1 never competes for frames
    assert hi.evictions > 0
    assert hi.remap_backlog_peak > lo.remap_backlog_peak
    assert hi.goodput_msgs_s <= lo.goodput_msgs_s


def test_sweep_grid_digest_and_json():
    report = run_fleet_sweep(
        ["random", "lru"], [4, 16], [4],
        nis_per_host=1, frames=4, ticks=48,
        verify_determinism=True,
    )
    assert len(report.cells) == 4
    assert not report.nondeterministic
    assert not report.collapsed_cells()
    j = report.to_json()
    assert j["digest"] == report.digest
    assert len(j["cells"]) == 4


def test_memcheck_cell_is_the_acceptance_shape():
    cfg = FleetCellConfig(**MEMCHECK_CELL)
    assert cfg.total_endpoints >= 100_000
    assert cfg.hosts >= 64


def test_memory_budget_at_acceptance_cell():
    """The acceptance gate itself: 10^5 endpoints across 64 hosts,
    tracemalloc peak under the documented budget (short run — table
    build dominates the peak, not tick count)."""
    from repro.scale.fleet import FleetReport

    report = FleetReport(arrival="diurnal", seed=1999)
    res = run_memcheck(report, ticks=6)
    assert res.total_endpoints >= 100_000
    assert res.tracemalloc_peak_bytes > 0
    assert not report.memory_violations, report.memory_violations
    assert res.tracemalloc_peak_bytes < MEMCHECK_BUDGET_MB * 1e6


def test_unknown_policy_and_arrival_raise():
    with pytest.raises(ValueError, match="replacement policy"):
        run_fleet_cell(FleetCellConfig(policy="nope", **TINY))
    with pytest.raises(ValueError, match="arrival"):
        run_fleet_cell(FleetCellConfig(arrival="nope", **TINY))


# ------------------------------------------------------- arrival models
def test_uniform_arrival_is_flat():
    m = ARRIVAL_MODELS["uniform"]()
    assert {m.intensity(t, 0.3) for t in range(10)} == {1.0}


def test_diurnal_arrival_has_trough_and_peak():
    m = ARRIVAL_MODELS["diurnal"]()
    vals = [m.intensity(t, 0.0) for t in range(m.period_ticks)]
    assert max(vals) == pytest.approx(1.0, abs=0.01)
    assert min(vals) == pytest.approx(m.trough, abs=0.01)
    # phase shifts the curve: two hosts half a period apart anti-align
    t_peak = vals.index(max(vals))
    shifted = m.intensity(t_peak, 0.5)
    assert shifted < 0.5 * max(vals)


def test_bursty_arrival_duty_cycle():
    m = ARRIVAL_MODELS["bursty"]()
    vals = [m.intensity(t, 0.0) for t in range(m.period_ticks)]
    on = sum(1 for v in vals if v == 1.0)
    assert on == round(m.period_ticks * m.duty)
    assert all(v == m.idle for v in vals if v != 1.0)
