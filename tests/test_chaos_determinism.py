"""Chaos runs are deterministic and the delivery contract holds under storm.

Pins the acceptance bar for :mod:`repro.chaos`:

* the same (seed, scenario, workload) triple twice gives bit-identical
  event timelines (same digest, same event count, same counters);
* a matrix of 20+ seed x scenario combinations passes every delivery
  invariant;
* killing a process mid-traffic yields RETURNED messages — never a hang,
  never duplicate delivery.
"""

import pytest

from repro.chaos import SCENARIO_FAMILIES, ScheduleGenerator, run_chaos


def _gen(seed, profile="rough", duration_ns=20_000_000):
    return ScheduleGenerator(
        seed,
        num_hosts=8,
        num_spines=2,
        num_procs=4,
        num_eps=4,
        duration_ns=duration_ns,
        profile=profile,
    )


def test_same_triple_is_bit_identical():
    a = run_chaos(_gen(3).generate("mixed"), "client_server")
    b = run_chaos(_gen(3).generate("mixed"), "client_server")
    assert a.digest == b.digest
    assert (a.events, a.sim_ns) == (b.events, b.sim_ns)
    assert (a.accepted, a.delivered, a.returned) == (b.accepted, b.delivered, b.returned)


def test_different_seeds_diverge():
    a = run_chaos(_gen(1).generate("crash_storm"), "pairwise")
    b = run_chaos(_gen(2).generate("crash_storm"), "pairwise")
    assert a.digest != b.digest


def test_generated_scenarios_are_well_formed():
    # validate() raises on malformed schedules (unsorted, unclosed flaps,
    # crashes without reboots, ...) — every generated family must pass
    for seed in (1, 7):
        for profile in ("mild", "rough", "brutal"):
            for scenario in _gen(seed, profile=profile).all():
                scenario.validate()
                assert scenario.actions, scenario.name


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_matrix_passes_all_invariants(seed):
    # 3 seeds x 9 families = 27 combos >= the 20 the acceptance bar asks
    # for; the workload rotates so each family meets every traffic shape
    # across the matrix.
    workloads = ("pairwise", "bulk", "client_server")
    gen = _gen(seed)
    for i, name in enumerate(SCENARIO_FAMILIES):
        report = run_chaos(gen.generate(name), workloads[(seed + i) % 3])
        assert report.ok, f"{report.summary()}: {report.violations[:4]}"


def test_kill_mid_traffic_returns_to_sender():
    # brutal kill_storm schedules kills in the first fifth of the window,
    # squarely mid-traffic: requests held by the killed process must come
    # back as RETURNED — the run neither hangs nor delivers twice.
    report = run_chaos(_gen(1, profile="brutal").generate("kill_storm"),
                       "client_server")
    assert report.ok, report.violations[:4]
    assert report.returned > 0
    assert report.duplicates == 0
