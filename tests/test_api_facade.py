"""The repro.api session facade: lifecycle, shims, and path equivalence.

Three contracts from the API redesign:

* a :class:`~repro.api.Session` (the ``AM_Init``/``AM_Terminate``
  analog) frees each of its endpoints through the segment driver
  exactly once, no matter how it is closed or how many times;
* the deprecated builder names (``build_parallel_vnet`` & co.) warn but
  keep working — and, being thin shims over the canonical generators,
  drive the simulation through a bit-identical timeline;
* misuse fails inside the :class:`AmError`/:class:`SimError` hierarchy.
"""

import pytest

from repro.am import (build_parallel_vnet, build_star_vnet, create_endpoint,
                      new_endpoint, parallel_vnet)
from repro.api import AmError, Cluster, Session
from repro.chaos import reset_global_ids, timeline_digest
from repro.cluster import Cluster as BuilderCluster
from repro.cluster import ClusterConfig
from repro.nic.endpoint_state import Residency


# ----------------------------------------------------------- session lifecycle
def test_session_context_manager_frees_endpoints_once():
    with Session(nodes=[0, 1], num_hosts=4) as s:
        assert len(s.endpoints) == 2
        assert s.vnet is not None
        ep0, ep1 = s.endpoints
        assert ep0.node.node_id == 0 and ep1.node.node_id == 1
        assert not s.closed
    assert s.closed
    for ep in s.endpoints:
        assert ep.state.residency is Residency.FREED
        assert ep.node.driver.stats.frees == 1


def test_session_close_is_idempotent():
    s = Session(nodes=[0, 1], num_hosts=4)
    s.close()
    s.close()
    with s:  # __exit__ closes again
        pass
    for ep in s.endpoints:
        assert ep.node.driver.stats.frees == 1


def test_session_star_topology():
    with Session(star=(0, [1, 2, 3]), shared_server_ep=False,
                 num_hosts=4) as s:
        assert len(s.servers) == 3 and len(s.clients) == 3
        assert s.endpoints == s.servers + s.clients
        assert len(s.bundle().endpoints) == 6
        assert s.bundle() is s.bundle()  # cached


def test_session_joining_existing_cluster_leaves_it_up():
    cluster = BuilderCluster(ClusterConfig(num_hosts=4))
    outside = cluster.run_process(
        new_endpoint(cluster.node(2), rngs=cluster.rngs), "outside")
    with Session(nodes=[0, 1], cluster=cluster) as s:
        assert s.cluster is cluster
    # the session freed only its own endpoints
    for ep in s.endpoints:
        assert ep.state.residency is Residency.FREED
    assert outside.state.residency is not Residency.FREED
    assert cluster.node(2).driver.stats.frees == 0


def test_session_argument_validation():
    with pytest.raises(AmError):
        Session(num_hosts=4)
    with pytest.raises(AmError):
        Session(nodes=[0, 1], star=(0, [1]), num_hosts=4)


def test_cluster_context_manager_frees_everything():
    with Cluster(ClusterConfig(num_hosts=4)) as cluster:
        ep = cluster.run_process(
            new_endpoint(cluster.node(1), rngs=cluster.rngs), "e")
    assert ep.state.residency is Residency.FREED
    assert cluster.node(1).driver.stats.frees == 1


# ------------------------------------------------------------ deprecated shims
def test_deprecated_builders_warn_and_work():
    cluster = BuilderCluster(ClusterConfig(num_hosts=4))
    with pytest.warns(DeprecationWarning, match="parallel_vnet"):
        vnet = cluster.run_process(build_parallel_vnet(cluster, [0, 1]), "setup")
    assert len(vnet.endpoints) == 2

    cluster2 = BuilderCluster(ClusterConfig(num_hosts=4))
    with pytest.warns(DeprecationWarning, match="star_vnet"):
        servers, clients = cluster2.run_process(
            build_star_vnet(cluster2, 0, [1, 2]), "setup")
    assert len(clients) == 2

    cluster3 = BuilderCluster(ClusterConfig(num_hosts=4))
    with pytest.warns(DeprecationWarning, match="new_endpoint"):
        ep = cluster3.run_process(
            create_endpoint(cluster3.node(0), rngs=cluster3.rngs), "e")
    assert ep.node.node_id == 0


# ------------------------------------------------- old/new path equivalence
def _pingpong_digest(build):
    """Run a small request/reply workload; return the timeline digest.

    ``build(cluster)`` returns the two endpoints — this is the only part
    that differs between the old and new call paths.
    """
    reset_global_ids()
    cluster = BuilderCluster(ClusterConfig(num_hosts=4, seed=7))
    bus = cluster.enable_tracing()
    sim = cluster.sim
    ep0, ep1 = build(cluster)
    done = []

    def handler(token):
        token.reply(None)

    def receiver(thr):
        while not done:
            yield from ep1.poll(thr, limit=8)

    def sender(thr):
        for _ in range(20):
            yield from ep0.request(thr, 1, handler, nbytes=16)
            while True:
                if (yield from ep0.poll(thr, limit=4)):
                    break
        done.append(1)

    cluster.node(1).start_process("r").spawn_thread(receiver)
    cluster.node(0).start_process("s").spawn_thread(sender)
    from repro.sim import ms
    sim.run(until=sim.now + ms(500), stop=lambda: bool(done))
    assert done
    digest = timeline_digest(bus.events)
    bus.detach()
    return digest


def test_old_and_new_call_paths_identical_digest():
    # process names show up in the trace, so all three paths must name the
    # setup process identically ("s.setup") for the digests to be comparable
    def via_canonical(cluster):
        vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "s.setup")
        return vnet[0], vnet[1]

    def via_deprecated(cluster):
        with pytest.warns(DeprecationWarning):
            vnet = cluster.run_process(build_parallel_vnet(cluster, [0, 1]),
                                       "s.setup")
        return vnet[0], vnet[1]

    def via_session(cluster):
        s = Session(nodes=[0, 1], cluster=cluster, name="s")
        return s.endpoints

    d_new = _pingpong_digest(via_canonical)
    d_old = _pingpong_digest(via_deprecated)
    assert d_new == d_old, "deprecated shim changed the timeline"

    d_session = _pingpong_digest(via_session)
    assert d_new == d_session, "Session facade changed the timeline"
