"""Unit tests for the Split-C layer and the RPC package."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.lib.rpc import RpcClient, RpcError, RpcServer
from repro.lib.splitc import build_splitc_world
from repro.am import parallel_vnet
from repro.sim import ms


def build(n=4, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def run_splitc(nranks, main, until_ms=3_000):
    cluster = build(max(2, nranks))
    world = cluster.run_process(build_splitc_world(cluster, list(range(nranks))), "scw")
    threads = world.spawn(main)
    cluster.run(until=cluster.sim.now + ms(until_ms))
    for t in threads:
        assert t.finished, f"{t.name} hung"
    return world, [t.result for t in threads]


# ------------------------------------------------------------------ Split-C
def test_put_lands_in_remote_memory():
    def main(thr, ctx):
        if ctx.rank == 0:
            yield from ctx.put(thr, 1, "k", 99, 1024)
        yield from ctx.barrier(thr)
        yield from ctx.barrier(thr)  # give the put time to complete
        return ctx.memory.get("k")

    _, results = run_splitc(2, main)
    assert results[1] == 99


def test_get_split_phase_and_sync():
    def main(thr, ctx):
        ctx.memory[("data", ctx.rank)] = ctx.rank * 10
        yield from ctx.barrier(thr)
        if ctx.rank == 0:
            yield from ctx.get(thr, 1, ("data", 1), 2048)
            values = yield from ctx.sync(thr)
            return values[("data", 1)]
        # rank 1 services gets for a while
        for _ in range(500):
            yield from ctx.endpoint.poll(thr)
            yield from thr.compute(2_000)
        return None

    _, results = run_splitc(2, main)
    assert results[0] == 10


def test_barrier_over_splitc():
    order = []

    def main(thr, ctx):
        yield from thr.sleep(ctx.rank * 500_000)
        yield from ctx.barrier(thr)
        order.append((ctx.world.sim.now, ctx.rank))

    run_splitc(4, main)
    times = [t for t, _ in order]
    # all ranks exit within a short window after the last arrival
    assert max(times) - min(times) < 1_000_000


def test_comm_time_tracked():
    def main(thr, ctx):
        yield from ctx.barrier(thr)
        return ctx.comm_ns

    world, results = run_splitc(4, main)
    assert all(r > 0 for r in results)


# ---------------------------------------------------------------------- RPC
def rpc_pair():
    cluster = build(4)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    server_ep, client_ep = vnet[0], vnet[1]
    server = RpcServer(server_ep)
    client = RpcClient(client_ep, server_index=0)
    return cluster, server, client


def test_rpc_roundtrip():
    cluster, server, client = rpc_pair()
    server.register("add", lambda a, b: a + b)
    stop = {"flag": False}
    cluster.node(0).start_process().spawn_thread(lambda thr: server.serve_loop(thr, stop))

    def call(thr):
        result = yield from client.call(thr, server, "add", 2, 3)
        stop["flag"] = True
        return result

    t = cluster.node(1).start_process().spawn_thread(call)
    cluster.run(until=cluster.sim.now + ms(500))
    assert t.result == 5
    assert server.calls_served == 1


def test_rpc_unknown_procedure_raises():
    cluster, server, client = rpc_pair()
    stop = {"flag": False}
    cluster.node(0).start_process().spawn_thread(lambda thr: server.serve_loop(thr, stop))

    def call(thr):
        try:
            yield from client.call(thr, server, "nope")
        except RpcError as err:
            stop["flag"] = True
            return str(err)

    t = cluster.node(1).start_process().spawn_thread(call)
    cluster.run(until=cluster.sim.now + ms(500))
    assert "no such procedure" in t.result


def test_rpc_duplicate_registration_rejected():
    _, server, _ = rpc_pair()
    server.register("f", lambda: 1)
    with pytest.raises(ValueError):
        server.register("f", lambda: 2)


def test_rpc_dead_server_surfaces_error():
    """Crash + return-to-sender shows up as an RpcError, not a hang (§3.2)."""
    cluster, server, client = rpc_pair()
    cluster.cfg.dead_timeout_ms = 15.0
    server.register("f", lambda: 1)
    cluster.crash_node(0)

    def call(thr):
        try:
            yield from client.call(thr, server, "f")
        except RpcError as err:
            return "failed"

    t = cluster.node(1).start_process().spawn_thread(call)
    cluster.run(until=cluster.sim.now + ms(800))
    assert t.finished and t.result == "failed"
