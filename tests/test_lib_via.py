"""Tests for the VIA extension layer (Section 7 / conclusions)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.lib.via import (
    ERROR,
    RECV,
    SEND_DONE,
    CompletionQueue,
    connect_vis,
    create_vi,
    full_mesh_vis,
)
from repro.sim import ms


def build(n=4, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def make_pair(cluster):
    cq0 = CompletionQueue(cluster.node(0), "cq0")
    cq1 = CompletionQueue(cluster.node(1), "cq1")
    vi0 = cluster.run_process(create_vi(cluster.node(0), cq0, cluster), "v0")
    vi1 = cluster.run_process(create_vi(cluster.node(1), cq1, cluster), "v1")
    connect_vis(vi0, vi1)
    return cq0, cq1, vi0, vi1


def test_vi_send_completes_on_both_sides():
    cluster = build()
    cq0, cq1, vi0, vi1 = make_pair(cluster)
    events = {"recv": None, "send_done": None}

    def sender(thr):
        yield from vi0.post_send(thr, 1024, context="xfer-1", payload="hello")
        completion = yield from cq0.wait(thr, timeout_ns=ms(200))
        events["send_done"] = completion

    def receiver(thr):
        completion = yield from cq1.wait(thr, timeout_ns=ms(200))
        events["recv"] = completion

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=cluster.sim.now + ms(500))
    assert events["recv"] is not None and events["recv"].kind == RECV
    assert events["recv"].payload == "hello"
    assert events["recv"].nbytes == 1024
    assert events["send_done"] is not None and events["send_done"].kind == SEND_DONE
    assert events["send_done"].context == "xfer-1"


def test_vi_requires_connection():
    cluster = build()
    cq = CompletionQueue(cluster.node(0))
    vi = cluster.run_process(create_vi(cluster.node(0), cq, cluster), "v")
    proc = cluster.node(0).start_process()

    def body(thr):
        try:
            yield from vi.post_send(thr, 16)
        except RuntimeError:
            return "unconnected"

    t = proc.spawn_thread(body)
    cluster.run(until=cluster.sim.now + ms(10))
    assert t.result == "unconnected"


def test_vi_double_connect_rejected():
    cluster = build()
    _, _, vi0, vi1 = make_pair(cluster)
    with pytest.raises(RuntimeError):
        vi0.connect(vi1.endpoint.name, vi1.endpoint.tag)


def test_shared_completion_queue_across_vis():
    """Several VIs share one CQ: the central polling point (Section 7)."""
    cluster = build(6)
    server_cq = CompletionQueue(cluster.node(0), "server-cq")
    client_vis = []
    server_vis = []
    for i in range(3):
        svi = cluster.run_process(create_vi(cluster.node(0), server_cq, cluster), f"s{i}")
        ccq = CompletionQueue(cluster.node(i + 1))
        cvi = cluster.run_process(create_vi(cluster.node(i + 1), ccq, cluster), f"c{i}")
        connect_vis(svi, cvi)
        server_vis.append(svi)
        client_vis.append((cvi, ccq))

    got = []

    def server(thr):
        while len(got) < 3:
            completion = yield from server_cq.wait(thr, timeout_ns=ms(50))
            if completion is not None and completion.kind == RECV:
                got.append(completion.context)

    def make_client(i, cvi, ccq):
        def client(thr):
            yield from cvi.post_send(thr, 64, context=f"client{i}")
            yield from ccq.wait(thr, timeout_ns=ms(300))

        return client

    cluster.node(0).start_process().spawn_thread(server)
    for i, (cvi, ccq) in enumerate(client_vis):
        cluster.node(i + 1).start_process().spawn_thread(make_client(i, cvi, ccq))
    cluster.run(until=cluster.sim.now + ms(800))
    assert sorted(got) == ["client0", "client1", "client2"]
    # all three connections completed through ONE queue
    assert sum(v.recvs_completed for v in server_vis) == 3


def test_full_mesh_needs_n_squared_vis():
    """The Section 7 contrast: n*(n-1) VIs vs n endpoints."""
    cluster = build(4)
    cqs, vis = cluster.run_process(full_mesh_vis(cluster, [0, 1, 2, 3]), "mesh")
    count = sum(len(row) for row in vis.values())
    assert count == 4 * 3
    # every pair is connected both ways
    for i in range(4):
        for j in range(4):
            if i != j:
                assert vis[i][j].connected


def test_vi_error_completion_on_dead_peer():
    """Reliable-delivery failures surface as ERROR completions."""
    cluster = build(dead_timeout_ms=15.0)
    cq0, cq1, vi0, vi1 = make_pair(cluster)
    cluster.crash_node(1)
    seen = {}

    def sender(thr):
        yield from vi0.post_send(thr, 128, context="doomed")
        completion = yield from cq0.wait(thr, timeout_ns=ms(400))
        seen["c"] = completion

    cluster.node(0).start_process().spawn_thread(sender)
    cluster.run(until=cluster.sim.now + ms(800))
    assert seen["c"] is not None
    assert seen["c"].kind == ERROR
