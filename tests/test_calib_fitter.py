"""Property-based check of the LogP least-squares fitter.

Synthesizes observation bags from *known* ground-truth constants —
randomized per seed, with bounded multiplicative noise — and asserts
:func:`repro.calib.fitter.fit_constants` recovers every constant within
5%.  This pins the fitter independently of the simulator: if the
calibration round trip ever fails, this test says whether the fitter or
the measurement path broke.
"""

import random

import pytest

from repro.calib.fitter import Observation, fit_constants, lstsq

#: relative recovery tolerance the property asserts
TOL = 0.05
#: additive noise amplitude (ns) applied to synthetic samples — the
#: shape of the real sweep's deviations (integer timestamp quantization
#: and scheduling jitter are absolute, not proportional to the value)
NOISE_NS = 25.0


def _synthesize(rng: random.Random) -> tuple[dict, list[Observation]]:
    """Ground-truth constants + a noisy observation bag sampling them."""
    truth = {
        "os_ns": rng.uniform(1_000, 5_000),
        "or_ns": rng.uniform(1_000, 5_000),
        "lat_fixed_ns": rng.uniform(3_000, 9_000),
        "lat_per_link_ns": rng.uniform(200, 900),
        "lat_per_byte_ns": rng.uniform(4.0, 12.0),
        "g_ns": rng.uniform(8_000, 16_000),
        "G_ns_per_byte": rng.uniform(10.0, 40.0),
        "bulk_fixed_ns": rng.uniform(4_000, 12_000),
    }

    def noisy(value: float) -> float:
        return value + rng.uniform(-NOISE_NS, NOISE_NS)

    obs: list[Observation] = []
    for _ in range(rng.randint(4, 10)):
        obs.append(Observation("os", noisy(truth["os_ns"])))
        obs.append(Observation("or", noisy(truth["or_ns"])))
        obs.append(Observation("gap", noisy(truth["g_ns"])))
    # the latency surface needs diversity in links AND bytes (as the
    # real sweep provides: same-leaf + cross-leaf routes, several sizes)
    for links in (2, 4):
        for nbytes in (16, 64, 128):
            for _ in range(rng.randint(4, 6)):
                d = (truth["lat_fixed_ns"]
                     + truth["lat_per_link_ns"] * links
                     + truth["lat_per_byte_ns"] * nbytes)
                obs.append(Observation("oneway", noisy(d),
                                       nbytes=nbytes, links=links))
    for nbytes in (2_048, 4_096, 8_192):
        t = truth["bulk_fixed_ns"] + truth["G_ns_per_byte"] * nbytes
        obs.append(Observation("bulk_gap", noisy(t), nbytes=nbytes))
    rng.shuffle(obs)
    return truth, obs


@pytest.mark.parametrize("seed", range(20))
def test_fitter_recovers_known_constants(seed):
    truth, obs = _synthesize(random.Random(seed))
    fit = fit_constants(obs)
    for name, expected in truth.items():
        got = getattr(fit, name)
        rel = abs(got - expected) / abs(expected)
        assert rel <= TOL, (
            f"seed {seed}: {name} fitted {got:.2f} vs truth {expected:.2f} "
            f"({rel * 100.0:.1f}% > {TOL * 100.0:.0f}%)")


def test_fitter_exact_on_noiseless_data():
    truth, obs = _synthesize(random.Random(99))
    exact = []
    for ob in obs:
        if ob.kind == "oneway":
            v = (truth["lat_fixed_ns"] + truth["lat_per_link_ns"] * ob.links
                 + truth["lat_per_byte_ns"] * ob.nbytes)
        elif ob.kind == "bulk_gap":
            v = truth["bulk_fixed_ns"] + truth["G_ns_per_byte"] * ob.nbytes
        else:
            v = truth[{"os": "os_ns", "or": "or_ns", "gap": "g_ns"}[ob.kind]]
        exact.append(Observation(ob.kind, v, nbytes=ob.nbytes, links=ob.links))
    fit = fit_constants(exact)
    for name, expected in truth.items():
        assert getattr(fit, name) == pytest.approx(expected, rel=1e-9)


def test_fit_counts_report_consumed_rows():
    _, obs = _synthesize(random.Random(5))
    fit = fit_constants(obs)
    by_kind = {}
    for ob in obs:
        by_kind[ob.kind] = by_kind.get(ob.kind, 0) + 1
    assert fit.counts == by_kind


def test_lstsq_rejects_degenerate_sweep():
    # every route the same length: the per-link column is collinear with
    # the intercept and the surface is unidentifiable
    rows = [((1.0, 2.0, float(b)), 5_000.0 + 7.0 * b) for b in (16, 64, 128)]
    with pytest.raises(ValueError, match="singular"):
        lstsq(rows)


def test_fit_requires_every_kind():
    with pytest.raises(ValueError, match="'os'"):
        fit_constants([Observation("oneway", 1.0, nbytes=16, links=2)])
