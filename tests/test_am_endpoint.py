"""Unit tests for the AM-II programming interface (Section 3)."""

import pytest

from repro.am import BadTranslationError, Bundle, parallel_vnet, star_vnet, new_endpoint
from repro.cluster import Cluster, ClusterConfig
from repro.nic import Residency
from repro.sim import ms, us


def build(n=4, **kw):
    return Cluster(ClusterConfig(num_hosts=n, **kw))


def pair(cluster):
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    return vnet[0], vnet[1]


def run_threads(cluster, *specs, until_ms=200):
    """specs: (node_id, body). Returns the threads."""
    threads = []
    for node_id, body in specs:
        proc = cluster.node(node_id).start_process()
        threads.append(proc.spawn_thread(body))
    cluster.run(until=cluster.sim.now + ms(until_ms))
    return threads


def test_new_endpoint_unique_tags_and_ids():
    cluster = build()
    ep1 = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "e1")
    ep2 = cluster.run_process(new_endpoint(cluster.node(0), rngs=cluster.rngs), "e2")
    assert ep1.name != ep2.name
    assert ep1.tag != ep2.tag
    assert ep1.tag != 0  # keys are never zero


def test_request_reply_roundtrip_and_credit_return():
    cluster = build()
    ep0, ep1 = pair(cluster)
    cfg = cluster.cfg
    got, replies = [], []

    def handler(token, x):
        got.append(x)
        token.reply(lambda t, v: replies.append(v) or 0, x + 1)

    def client(thr):
        yield from ep0.request(thr, 1, handler, 41)
        while not replies:
            yield from ep0.poll(thr)
            yield from thr.compute(us(1))

    def server(thr):
        while not got:
            yield from ep1.poll(thr)
            yield from thr.compute(us(1))
        for _ in range(50):
            yield from ep1.poll(thr)
            yield from thr.compute(us(1))

    run_threads(cluster, (1, server), (0, client))
    assert got == [41]
    assert replies == [42]
    assert ep0.credits_available(1) == cfg.user_credits  # credit returned


def test_auto_reply_returns_credit_without_handler_reply():
    cluster = build()
    ep0, ep1 = pair(cluster)
    got = []

    def handler(token, x):
        got.append(x)  # no explicit reply -> library credit reply

    def client(thr):
        yield from ep0.request(thr, 1, handler, 7)
        while ep0.credits_available(1) < cluster.cfg.user_credits:
            yield from ep0.poll(thr)
            yield from thr.compute(us(1))

    def server(thr):
        while not got:
            yield from ep1.poll(thr)
            yield from thr.compute(us(1))

    run_threads(cluster, (1, server), (0, client))
    assert got == [7]
    assert ep1.stats.auto_replies == 1


def test_unmapped_index_raises():
    cluster = build()
    ep0, _ = pair(cluster)
    proc = cluster.node(0).start_process()

    def client(thr):
        try:
            yield from ep0.request(thr, 9, None)
        except BadTranslationError:
            return "raised"

    t = proc.spawn_thread(client)
    cluster.run(until=ms(50))
    assert t.result == "raised"


def test_credit_limit_bounds_outstanding():
    """No more than user_credits requests may be un-replied at once."""
    cluster = build(user_credits=4, recv_queue_depth=32)
    ep0, ep1 = pair(cluster)
    seen = []

    def handler(token, i):
        seen.append(i)

    def client(thr):
        for i in range(12):
            yield from ep0.request(thr, 1, handler, i)
            outstanding = len(ep0._outstanding)
            assert outstanding <= 4
        while ep0.credits_available(1) < 4:
            yield from ep0.poll(thr)
            yield from thr.compute(us(1))

    def server(thr):
        while len(seen) < 12:
            yield from ep1.poll(thr)
            yield from thr.compute(us(1))

    run_threads(cluster, (1, server), (0, client))
    assert sorted(seen) == list(range(12))
    assert ep0.stats.credit_stalls > 0


def test_bulk_fragmentation_and_reassembly():
    cluster = build()
    ep0, ep1 = pair(cluster)
    cfg = cluster.cfg
    done = []

    def handler(token):
        done.append(token.nbytes)

    nbytes = cfg.mtu_bytes * 3 + 100  # 4 fragments

    def client(thr):
        yield from ep0.request(thr, 1, handler, nbytes=nbytes)
        while ep0.credits_available(1) < cfg.user_credits:
            yield from ep0.poll(thr)
            yield from thr.compute(us(2))

    def server(thr):
        while not done:
            yield from ep1.poll(thr)
            yield from thr.compute(us(2))

    run_threads(cluster, (1, server), (0, client))
    assert done == [nbytes]  # handler ran once, with the full size
    assert ep1.stats.bulk_bytes_received == nbytes
    assert ep0.stats.bulk_bytes_sent == nbytes


def test_small_payload_stays_on_pio_path():
    cluster = build()
    ep0, ep1 = pair(cluster)
    got = []

    def handler(token):
        got.append(token.nbytes)

    def client(thr):
        yield from ep0.request(thr, 1, handler, nbytes=64)
        while ep0.credits_available(1) < cluster.cfg.user_credits:
            yield from ep0.poll(thr)
            yield from thr.compute(us(1))

    def server(thr):
        while not got:
            yield from ep1.poll(thr)
            yield from thr.compute(us(1))

    run_threads(cluster, (1, server), (0, client))
    assert got == [64]
    # no bulk path for small messages (the payload rides the descriptor)
    assert ep0.stats.bulk_bytes_sent == 0
    assert ep1.stats.bulk_bytes_received == 0


def test_undeliverable_handler_invoked():
    cluster = build()
    ep0, _ = pair(cluster)
    errors = []
    ep0.undeliverable_handler = lambda msg, reason: errors.append(reason)
    # map index 5 to a nonexistent endpoint
    ep0.map(5, (1, 99), key=123)

    def client(thr):
        yield from ep0.request(thr, 5, None, nbytes=0)
        while not errors:
            yield from ep0.poll(thr)
            yield from thr.compute(us(2))

    run_threads(cluster, (0, client))
    assert len(errors) == 1
    assert ep0.stats.undeliverable == 1
    # the failed request's credit came back
    assert ep0.credits_available(5) == cluster.cfg.user_credits


def test_event_driven_wait_wakes_on_arrival():
    cluster = build()
    ep0, ep1 = pair(cluster)
    got = []

    def handler(token, x):
        got.append(x)

    def server(thr):
        ep1.set_event_mask({"recv"})
        ok = yield from ep1.wait(thr, timeout_ns=ms(150))
        assert ok, "wait timed out"
        while not got:
            yield from ep1.poll(thr)

    def client(thr):
        yield from thr.sleep(ms(20))  # past the server's spin phase
        yield from ep0.request(thr, 1, handler, 3)
        for _ in range(300):
            yield from ep0.poll(thr)
            yield from thr.compute(us(2))

    run_threads(cluster, (1, server), (0, client), until_ms=400)
    assert got == [3]
    assert ep1.stats.wakeups >= 1  # woke via the event mask, not polling


def test_wait_times_out_when_silent():
    cluster = build()
    ep0, _ = pair(cluster)
    proc = cluster.node(0).start_process()

    def body(thr):
        ok = yield from ep0.wait(thr, timeout_ns=ms(5))
        return ok

    t = proc.spawn_thread(body)
    cluster.run(until=ms(100))
    assert t.result is False


def test_shared_endpoint_charges_lock_cost():
    cluster = build()
    ep0, _ = pair(cluster)
    ep0.set_shared(True)
    proc = cluster.node(0).start_process()

    def body(thr):
        t0 = cluster.sim.now
        yield from ep0.poll(thr)
        return cluster.sim.now - t0

    t = proc.spawn_thread(body)
    cluster.run(until=ms(50))
    assert t.result >= cluster.cfg.shared_ep_lock_ns


def test_send_to_nonresident_endpoint_uses_cheap_write():
    """Os differs by residency: PIO when resident, cacheable store when not."""
    cluster = build()
    ep0, _ = pair(cluster)
    assert ep0.state.residency is Residency.ONHOST_RO
    assert ep0._send_overhead_ns() == cluster.cfg.host_write_nonresident_ns
    ep0.state.residency = Residency.ONNIC_RW
    assert ep0._send_overhead_ns() == cluster.cfg.host_send_overhead_ns
    assert ep0._poll_touch_ns() == cluster.cfg.poll_resident_ns
    ep0.state.residency = Residency.ONHOST_RO
    assert ep0._poll_touch_ns() == cluster.cfg.poll_host_ns


def test_bundle_polls_round_robin():
    cluster = build()
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1, 2]), "setup")
    ep0, ep1, ep2 = vnet[0], vnet[1], vnet[2]
    server_node = cluster.node(0)
    # two endpoints on node 0 bundled together
    ep0b = cluster.run_process(new_endpoint(server_node, rngs=cluster.rngs), "eb")
    bundle = Bundle([ep0, ep0b])
    assert len(bundle) == 2
    assert list(iter(bundle)) == [ep0, ep0b]
    proc = server_node.start_process()

    def body(thr):
        n = yield from bundle.poll_all(thr)
        return n

    t = proc.spawn_thread(body)
    cluster.run(until=ms(50))
    assert t.result == 0  # nothing pending, but both were swept


def test_star_vnet_shapes():
    cluster = build(8)
    servers, clients = cluster.run_process(
        star_vnet(cluster, 0, [1, 2, 3], shared_server_ep=True), "star"
    )
    assert len(servers) == 1 and len(clients) == 3
    servers2, clients2 = cluster.run_process(
        star_vnet(cluster, 0, [1, 2, 3], shared_server_ep=False), "star2"
    )
    assert len(servers2) == 3
    # each client maps index 0 at its server endpoint
    for cep in clients2:
        assert 0 in cep.state.translation
