"""Regression tests for specific defects found and fixed during development.

Each test pins a failure mode that once existed, so it cannot return.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.myrinet import Network, Packet, PacketType
from repro.nic import DriverOp, EndpointState, Message, MessageState, MsgKind, Nic
from repro.sim import Event, Simulator, ms, us


def test_acks_bypass_a_data_backlog():
    """Regression: acknowledgments once queued behind backpressured data
    floods, exceeding any retransmission timer and melting the system
    down.  Protocol packets must dispatch ahead of queued data."""
    cfg = ClusterConfig(num_hosts=4)
    sim = Simulator()
    net = Network(sim, cfg)
    nics = [Nic(sim, cfg, i, net) for i in range(4)]
    nic = nics[0]
    # stuff the data FIFO
    for i in range(cfg.ni_rx_fifo_packets):
        nic._on_wire_rx(Packet(src_nic=1, dst_nic=0, kind=PacketType.DATA, msg_id=1000 + i))
    # an ACK arriving now must not wait behind that backlog
    result = nic._on_wire_rx(Packet(src_nic=1, dst_nic=0, kind=PacketType.ACK, msg_id=5))
    assert result is None                 # accepted immediately
    assert len(nic._rx_proto_q) == 1      # on the fast path


def test_cpu_lease_released_by_finished_thread():
    """Regression: a thread whose body ended kept the CPU lease, stalling
    other runnable threads until quantum expiry."""
    from repro.hw import Cpu
    from repro.osim import Thread

    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=10_000_000, context_switch_ns=0)
    ends = {}

    def quick(thr):
        yield from thr.compute(1_000)
        ends["quick"] = sim.now

    def follower(thr):
        yield from thr.sleep(500)  # arrives second
        yield from thr.compute(1_000)
        ends["follower"] = sim.now

    Thread(sim, cpu, quick)
    Thread(sim, cpu, follower)
    sim.run()
    # follower ran promptly after quick finished, not a quantum later
    assert ends["follower"] <= 5_000


def test_kernel_priority_preempts_polling_thread():
    """Regression: the remap kernel thread starved behind a polling user
    thread's lease, collapsing ST-8 to ~1% throughput."""
    from repro.hw import Cpu
    from repro.osim import Thread

    sim = Simulator()
    cpu = Cpu(sim, quantum_ns=10_000_000, context_switch_ns=10_000)
    progress = {}

    def poller(thr):
        # a tight user-level poll loop that never blocks
        for _ in range(20_000):
            yield from thr.compute(800)

    def kernel_work():
        yield from cpu.compute(us(500), owner="kernel", priority=1)
        progress["done"] = sim.now

    Thread(sim, cpu, poller)
    sim.spawn(kernel_work())
    sim.run(until=ms(16))
    # kernel work completed within a couple of slice lengths, not after
    # the poller's multi-millisecond lease
    assert progress.get("done", 10**12) < ms(4)


def test_wrr_blocked_waiters_keep_their_place():
    """Regression: a just-served endpoint re-entered the channel-waiter
    queue ahead of endpoints that never ran, starving them entirely."""
    cfg = ClusterConfig(num_hosts=4, wrr_max_msgs=8)
    sim = Simulator()
    net = Network(sim, cfg)
    nics = [Nic(sim, cfg, i, net) for i in range(4)]

    def add(nic, ep_id, tag, frame):
        ep = EndpointState(nic.nic_id, ep_id, send_ring_depth=cfg.send_ring_depth,
                           recv_queue_depth=cfg.recv_queue_depth, tag=tag)
        nic.driver_request(DriverOp("alloc", ep, Event(sim)))
        nic.driver_request(DriverOp("load", ep, Event(sim), frame=frame))
        return ep

    a1, a2 = add(nics[0], 1, 10, 0), add(nics[0], 2, 11, 1)
    b1, b2 = add(nics[1], 1, 20, 0), add(nics[1], 2, 21, 1)
    sim.run(until=ms(1))
    m1 = [Message(src_node=0, src_ep=1, dst_node=1, dst_ep=1, key=20, kind=MsgKind.REQUEST) for _ in range(40)]
    m2 = [Message(src_node=0, src_ep=2, dst_node=1, dst_ep=2, key=21, kind=MsgKind.REQUEST) for _ in range(40)]
    for x, y in zip(m1, m2):
        nics[0].host_enqueue_send(a1, x)
        nics[0].host_enqueue_send(a2, y)

    def drain():
        while True:
            nics[1].host_poll_recv(b1)
            nics[1].host_poll_recv(b2)
            yield sim.timeout(us(5))

    sim.spawn(drain())
    sim.run(until=ms(1) + us(300))
    d1 = sum(1 for m in m1 if m.state is MessageState.DELIVERED)
    d2 = sum(1 for m in m2 if m.state is MessageState.DELIVERED)
    assert d1 > 0 and d2 > 0  # no starvation
    assert abs(d1 - d2) <= 2 * cfg.wrr_max_msgs


def test_mpi_orders_despite_multipath_channels():
    """Regression: 32 multipath channels reorder AM requests; MPI must
    still deliver per-pair FIFO (library sequencing)."""
    from repro.lib.mpi import build_world

    cluster = Cluster(ClusterConfig(num_hosts=2))
    world = cluster.run_process(build_world(cluster, [0, 1]), "mpi")

    def main(thr, comm):
        if comm.rank == 0:
            for i in range(40):
                yield from comm.send(thr, 1, "seq", 8, payload=i)
            return None
        got = []
        for _ in range(40):
            _, _, payload, _ = yield from comm.recv(thr, 0, "seq")
            got.append(payload)
        return got

    threads = world.spawn(main)
    cluster.run(until=cluster.sim.now + ms(3_000))
    assert threads[1].finished
    assert threads[1].result == list(range(40))


def test_bulk_timer_does_not_duplicate_healthy_transfer():
    """Regression: retransmission timers shorter than the staging DMAs
    duplicated perfectly healthy bulk packets."""
    cfg = ClusterConfig(num_hosts=4)
    sim = Simulator()
    net = Network(sim, cfg)
    nics = [Nic(sim, cfg, i, net) for i in range(4)]

    def add(nic, tag):
        ep = EndpointState(nic.nic_id, 1, send_ring_depth=cfg.send_ring_depth,
                           recv_queue_depth=cfg.recv_queue_depth, tag=tag)
        nic.driver_request(DriverOp("alloc", ep, Event(sim)))
        nic.driver_request(DriverOp("load", ep, Event(sim), frame=0))
        return ep

    a, b = add(nics[0], 10), add(nics[1], 20)
    sim.run(until=ms(1))
    msgs = [Message(src_node=0, src_ep=1, dst_node=1, dst_ep=1, key=20,
                    kind=MsgKind.REQUEST, payload_bytes=8192, is_bulk=True)
            for _ in range(16)]
    for m in msgs:
        nics[0].host_enqueue_send(a, m)

    def drain():
        while True:
            nics[1].host_poll_recv(b)
            yield sim.timeout(us(50))

    sim.spawn(drain())
    sim.run(until=ms(60))
    assert all(m.state is MessageState.DELIVERED for m in msgs)
    assert nics[0].stats.retransmissions == 0
    assert nics[1].stats.dup_reacks == 0
