"""The express delivery path: elision, equivalence, revocation, fallback.

The express path (``ClusterConfig.express_path``, on by default) must be
*unobservable*: delivery timestamps, :class:`NetworkStats`, and per-link
accounting are bit-identical whether a packet rode one pooled callback
or the full per-hop wormhole process.  These tests drive the same
deterministic traffic through both modes and diff everything observable,
then poke each disengagement trigger (faults, direct ``up`` flips,
tracing, contention) to pin the fallback machinery.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.myrinet import Network, Packet, PacketType
from repro.obs import TraceBus
from repro.sim import ReferenceSimulator, SimError, Simulator


def make_net(n=8, express=True, **kw):
    cfg = ClusterConfig(num_hosts=n, express_path=express, **kw)
    sim = Simulator()
    return sim, Network(sim, cfg), cfg


def link_ledger(net):
    """Every link's accounting totals, keyed by name."""
    return {
        link.name: (link.bytes_carried, link.packets_carried, link.busy_ns)
        for link in net.topology.all_links
    }


def drive(net, sim, sends):
    """Inject ``(at_ns, src, dst, nbytes)`` sends; return the delivery log."""
    log = []
    for i in range(net.cfg.num_hosts):
        net.attach(i, lambda p: log.append((net.sim.now, p.src_nic,
                                            p.dst_nic, p.msg_id)))
    for k, (at, src, dst, nbytes) in enumerate(sends):
        sim.schedule(at, net.send,
                     Packet(src, dst, PacketType.DATA,
                            payload_bytes=nbytes, msg_id=k + 1))
    sim.run()
    return log


def both_modes(sends, n=8):
    """Run the same send schedule express-on and express-off."""
    sim1, net1, _ = make_net(n, express=True)
    log1 = drive(net1, sim1, sends)
    sim2, net2, _ = make_net(n, express=False)
    log2 = drive(net2, sim2, sends)
    return (sim1, net1, log1), (sim2, net2, log2)


# ------------------------------------------------------------ equivalence
def test_uncontended_send_is_express_and_identical():
    sends = [(0, 0, 5, 64)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert log1 == log2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)
    assert n1.express.commits == 1 and n1.express.delivered == 1
    assert n2.express.hits() == 0
    # the whole point: strictly fewer kernel events dispatched
    assert s1.events_dispatched < s2.events_dispatched


def test_contended_burst_identical_timings_and_accounting():
    # staggered overlapping sends sharing links: commits, revocations
    # and fallbacks all happen, and nothing observable may differ
    sends = []
    for k in range(12):
        sends.append((k * 900, k % 8, (k + 3) % 8, 16 + 128 * (k % 4)))
    sends += [(11_000, 1, 0, 8192), (11_200, 2, 0, 8192), (11_300, 3, 0, 64)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert log1 == log2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)
    assert not n1._flights  # every flight fired or was demoted


def test_revocation_preserves_delivery_times():
    # first send commits an express flight; the second intersects its
    # route mid-flight and must demote it without shifting its delivery
    sends = [(0, 0, 1, 4096), (500, 2, 1, 64)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert n1.express.commits >= 1 and n1.express.revoked >= 1
    assert log1 == log2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)


def test_loopback_express_parity_and_cost():
    sends = [(0, 3, 3, 32), (100, 3, 3, 0)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert log1 == log2
    assert [t for t, *_ in log1] == [n1.loopback_ns, 100 + n1.loopback_ns]
    assert n1.express.loopback == 2
    assert n1.stats == n2.stats
    assert n1.stats.delivered == 2 and n1.stats.sent == 2
    assert n1.stats.bytes_delivered == n2.stats.bytes_delivered > 0


def test_express_on_reference_kernel():
    # the express path only needs schedule/spawn/call_after, which the
    # un-optimized reference kernel also provides
    cfg = ClusterConfig(num_hosts=8, express_path=True)
    sim = ReferenceSimulator()
    net = Network(sim, cfg)
    seen = []
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: seen.append(sim.now))
    pkt = Packet(0, 5, PacketType.DATA, payload_bytes=16)
    net.send(pkt)
    sim.run()
    assert net.express.commits == 1
    assert seen == [net.min_latency_ns(0, 5, pkt.wire_bytes(cfg.packet_header_bytes))]


# ------------------------------------------------------- disengagement
def test_fault_injection_disables_express_until_quiet_period():
    from repro.myrinet import FaultInjector

    sim, net, _ = make_net(8)
    assert net.express_active
    FaultInjector(sim, net).set_loss(0.0)  # benign, still a fault event
    assert not net.express_active
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: None)
    net.send(Packet(0, 5, PacketType.DATA))  # inside the quiet window
    sim.run()
    assert net.express.hits() == 0  # slow path until the window elapses


def test_sticky_disable_with_zero_quiet_window():
    from repro.myrinet import FaultInjector

    sim, net, _ = make_net(8, express_reenable_quiet_us=0.0)
    FaultInjector(sim, net).set_loss(0.0)
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: None)
    sim.schedule(10_000_000, net.send, Packet(0, 5, PacketType.DATA))
    sim.run()
    assert net.express.hits() == 0 and net.express.reenabled == 0
    assert not net.express_active  # the pre-hysteresis behaviour


def test_transient_flap_rearms_express():
    """Satellite regression: one transient link flap must not demote the
    remainder of a long run — after the quiet period (fabric healthy),
    the next send re-arms the path, and everything observable is still
    bit-identical to the express-off run."""
    sends = [(0, 0, 5, 64),              # pristine: express commit
             (1_500, 0, 5, 64),          # during/after the flap: slow
             (2_500_000, 0, 5, 64)]      # quiet period over: express again

    def flap(net, sim):
        link = net.topology.host_up[3]  # not on the 0->5 route
        sim.schedule(1_000, setattr, link, "up", False)
        sim.schedule(2_000, setattr, link, "up", True)

    sim1, net1, _ = make_net(8)
    flap(net1, sim1)
    log1 = drive(net1, sim1, sends)
    assert net1.express.commits == 2
    assert net1.express.reenabled == 1
    assert net1.express_active

    sim2, net2, _ = make_net(8, express=False)
    flap(net2, sim2)
    log2 = drive(net2, sim2, sends)
    assert log1 == log2
    assert net1.stats == net2.stats
    assert link_ledger(net1) == link_ledger(net2)


def test_no_rearm_while_fabric_degraded():
    sim, net, _ = make_net(8)
    net.topology.host_up[3].up = False  # down and stays down
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: None)
    sim.schedule(10_000_000, net.send, Packet(0, 5, PacketType.DATA))
    sim.run()
    assert net.express.hits() == 0 and net.express.reenabled == 0


def test_disjoint_wormhole_does_not_block_express():
    """Satellite regression: per-link slow-path tracking — a wormhole in
    flight on one corner of the fabric must not force unrelated routes
    onto the slow path (the old fabric-wide ``fallback_active``)."""
    # A commits 0->5; B (2->5) intersects and revokes it, then falls
    # back; C (1->2, fully disjoint from both) must still go express.
    sends = [(0, 0, 5, 4096), (500, 2, 5, 64), (600, 1, 2, 64)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert n1.express.revoked == 1
    assert n1.express.commits == 2  # A and C; the old code forced C slow
    assert log1 == log2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)


def test_direct_up_flip_disables_express():
    sim, net, _ = make_net(8)
    net.topology.host_up[3].up = False  # a test poking the attribute
    assert not net.express_active
    sim2, net2, _ = make_net(8)
    net2.topology.spine_switch(0).up = False
    assert not net2.express_active


def test_fault_mid_flight_demotes_committed_flight():
    # commit a flight, inject a fault before its delivery callback: the
    # flight is replayed as a wormhole process and still lands on time
    sends = [(0, 0, 5, 2048)]
    sim1, net1, _ = make_net(8)
    from repro.myrinet import FaultInjector

    fi = FaultInjector(sim1, net1)
    sim1.schedule(600, fi.set_corruption, 0.0)
    log1 = drive(net1, sim1, sends)
    assert net1.express.commits == 1 and net1.express.revoked == 1

    sim2, net2, _ = make_net(8, express=False)
    log2 = drive(net2, sim2, sends)
    assert log1 == log2
    assert link_ledger(net1) == link_ledger(net2)


def test_tracing_disables_express():
    sim, net, _ = make_net(8)
    TraceBus.attach(sim)
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: None)
    net.send(Packet(0, 5, PacketType.DATA))
    sim.run()
    assert net.express.hits() == 0
    assert net.express_active  # not *disabled*, just never engaged
    assert net.stats.delivered == 1


def test_express_stats_are_not_part_of_network_stats():
    from dataclasses import asdict

    sim, net, _ = make_net(4)
    assert "commits" not in asdict(net.stats)


def test_shard_boundary_demotes_before_express_and_local_stats():
    """A cached route can never span shards: with a boundary installed,
    a cross-shard send is demoted to a trunk handoff *before* express
    lookup, stats updates, or any RNG draw — and the demotion is
    counted separately so the express hit rate stays honest."""
    from repro.myrinet.shardlink import ShardBoundary

    sim, net, cfg = make_net(4, express=True)
    records = []
    # this fabric owns global hosts 4..7 (shard 1 of 2)
    net.install_boundary(ShardBoundary(1, 4, 4, cfg, records.append))
    log = []
    net.attach(0, lambda p: log.append(p))  # local host, global id 4

    # warm an express route on local traffic (global ids 4 -> 5)
    net.send(Packet(4, 5, PacketType.DATA, payload_bytes=64, msg_id=1))
    sim.run()
    assert net.stats.sent == 1
    before = dict(vars(net.stats)), net.express.hits()

    # now a cross-shard destination: global host 1 lives on shard 0
    net.send(Packet(4, 1, PacketType.DATA, payload_bytes=64, msg_id=2))
    sim.run()
    assert net.express.boundary_demotions == 1
    assert len(records) == 1
    arrive, src_shard, seq, src_g, dst_g, mid, nbytes, _kind = records[0]
    assert (src_shard, src_g, dst_g, mid, nbytes) == (1, 4, 1, 2, 64)
    assert arrive >= cfg.shard_trunk_base_ns
    # the local fabric never saw the packet: no stats, no express hit
    assert (dict(vars(net.stats)), net.express.hits()) == before


# --------------------------------------------------------- express trains
def test_back_to_back_same_route_joins_train():
    """DESIGN.md §11 residual, closed: a same-route follow-up send used
    to revoke the committed flight (both packets went slow); it now
    joins as a train member sharing the one pooled callback — and
    everything observable is still identical to the express-off run."""
    sends = [(0, 0, 5, 256), (200, 0, 5, 512), (400, 0, 5, 64)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert n1.express.commits == 1
    assert n1.express.train_joins == 2
    assert n1.express.revoked == 0
    assert n1.express.delivered == 3
    assert log1 == log2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)
    # the elision is real: one pending callback per member, not a
    # wormhole process per packet
    assert s1.events_dispatched < s2.events_dispatched


def test_express_trains_off_reproduces_revoke_behaviour():
    sims = []
    for trains in (True, False):
        cfg = ClusterConfig(num_hosts=8, express_path=True,
                            express_trains=trains)
        sim = Simulator()
        net = Network(sim, cfg)
        log = drive(net, sim, [(0, 0, 5, 256), (200, 0, 5, 512)])
        sims.append((net, log))
    (n_on, log_on), (n_off, log_off) = sims
    assert n_on.express.train_joins == 1 and n_on.express.revoked == 0
    assert n_off.express.train_joins == 0 and n_off.express.revoked == 1
    assert log_on == log_off  # the knob may never shift a timestamp
    assert n_on.stats == n_off.stats
    assert link_ledger(n_on) == link_ledger(n_off)


def test_train_demoted_by_intersecting_send():
    # a committed train (leader + 2 joins) is crossed mid-flight by a
    # send sharing its downstream link: every undelivered member must
    # replay as a wormhole process with identical timing
    sends = [(0, 0, 5, 2048), (150, 0, 5, 2048), (300, 0, 5, 64),
             (700, 2, 5, 128)]
    (s1, n1, log1), (s2, n2, log2) = both_modes(sends)
    assert n1.express.train_joins >= 1
    assert n1.express.revoked >= 1
    assert log1 == log2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)
    assert not n1._flights


def test_train_blocked_delivery_demotes_followers():
    """A member delivered into a full receive FIFO holds the tail link
    for real; the followers' frozen schedules are then invalid and they
    demote, queueing behind the drain in FIFO order."""
    def run(express, trains=True):
        cfg = ClusterConfig(num_hosts=8, express_path=express,
                            express_trains=trains)
        sim = Simulator()
        net = Network(sim, cfg)
        log, blockers = [], []

        def rx(p):
            log.append((sim.now, p.msg_id))
            if p.msg_id == 1:  # block the first delivery for a while
                ev = sim.event()
                blockers.append(ev)
                return ev
            return None

        net.attach(0, lambda p: None)
        net.attach(5, rx)
        for k in range(4):
            sim.schedule(k * 200, net.send,
                         Packet(0, 5, PacketType.DATA,
                                payload_bytes=256, msg_id=k + 1))
        sim.schedule(50_000, lambda: blockers[0].trigger(None))
        sim.run()
        clean = all(l.slow_refs == 0 and l._port.idle
                    and l.express_flight is None and l.busy_until == 0
                    for l in net.topology.all_links)
        return net, log, clean

    n1, log1, clean1 = run(express=True)
    n2, log2, clean2 = run(express=False)
    assert n1.express.train_joins >= 1 and n1.express.revoked >= 1
    assert log1 == log2
    assert clean1 and clean2
    assert n1.stats == n2.stats
    assert link_ledger(n1) == link_ledger(n2)


def test_fault_mid_train_demotes_every_member():
    sends = [(0, 0, 5, 2048), (150, 0, 5, 2048)]
    sim1, net1, _ = make_net(8)
    from repro.myrinet import FaultInjector

    fi = FaultInjector(sim1, net1)
    sim1.schedule(600, fi.set_corruption, 0.0)  # benign fault event
    log1 = drive(net1, sim1, sends)
    assert net1.express.train_joins == 1
    assert net1.express.revoked == 2  # leader and follower both replayed

    sim2, net2, _ = make_net(8, express=False)
    log2 = drive(net2, sim2, sends)
    assert log1 == log2
    assert link_ledger(net1) == link_ledger(net2)


# ------------------------------------------------------ attach lifecycle
def test_detach_and_reattach():
    sim, net, _ = make_net(4)
    net.attach(1, lambda p: None)
    assert net.attached(1)
    net.detach(1)
    assert not net.attached(1)
    net.attach(1, lambda p: None)  # regression: no "already attached"
    with pytest.raises(ValueError):
        net.detach(3)  # never attached
    with pytest.raises(ValueError):
        net.detach(99)  # out of range


def test_crash_reboot_cycle_reattaches_cleanly():
    """Regression: a crash/reboot/crash/reboot cycle used to raise
    ValueError("NIC already attached") because crash never detached."""
    from repro.cluster.builder import Cluster

    cluster = Cluster(ClusterConfig(num_hosts=4))
    nic = cluster.node(1).nic

    def cycle():
        for _ in range(2):
            cluster.crash_node(1)
            yield cluster.sim.timeout(1000)
            cluster.reboot_node(1)
            yield cluster.sim.timeout(1000)

    cluster.run_process(cycle(), name="cycle")
    assert nic.alive
    assert cluster.network.attached(1)


def test_session_close_detaches_all_nics():
    from repro.api import Session

    with Session(nodes=[0, 1], num_hosts=4) as s:
        net = s.cluster.network
        assert net.attached(0) and net.attached(1)
    assert not any(net.attached(i) for i in range(4))


# ------------------------------------------------------ drop observability
def test_per_reason_drop_counters_on_bus():
    sim, net, _ = make_net(8, packet_loss_prob=1.0)
    bus = TraceBus.attach(sim)
    net.attach(0, lambda p: None)
    net.send(Packet(0, 5, PacketType.DATA))  # lost
    sim.run()
    net.cfg.packet_loss_prob = 0.0
    net.topology.host_down[5].up = False
    net.send(Packet(0, 5, PacketType.DATA))  # no route
    sim.run()
    net.set_nic_dead(3, True)
    net.send(Packet(0, 3, PacketType.DATA))  # dead NIC
    net.send(Packet(0, 6, PacketType.DATA))  # no handler attached
    sim.run()
    reasons = [ev.get("reason") for ev in bus.select("net.drop")]
    assert reasons == ["loss", "noroute", "dead_nic", "dead_nic"]
    assert bus.metrics.counter("net.drop.loss", node=0).value == 1
    assert bus.metrics.counter("net.drop.noroute", node=5).value == 1
    assert net.stats.dropped_dead_nic == 2

    bus.publish_network(net)
    assert bus.metrics.counter("net.drop.dead_nic.total").value == 2
    assert bus.metrics.counter("net.drop.noroute.total").value == 1


def test_chaos_checker_audits_drop_accounting():
    from repro.chaos.invariants import check_drop_accounting

    sim, net, _ = make_net(8, packet_loss_prob=1.0)
    bus = TraceBus.attach(sim)
    net.attach(0, lambda p: None)
    net.attach(5, lambda p: None)
    net.send(Packet(0, 5, PacketType.DATA))
    sim.run()
    assert check_drop_accounting(net, bus.events) == []
    # cook the books: an uncounted drop must be flagged
    net.stats.dropped_loss += 1
    out = check_drop_accounting(net, bus.events)
    assert len(out) == 1 and out[0].invariant == "D.mismatch"


# ------------------------------------------------------------- sim kernel
@pytest.mark.parametrize("factory", [Simulator, ReferenceSimulator])
def test_call_after_fires_and_cancels(factory):
    sim = factory()
    hits = []
    sim.call_after(50, hits.append, "a")
    entry = sim.call_after(70, hits.append, "b")
    entry[3] = None  # the documented cancellation protocol
    sim.call_after(90, hits.append, "c")
    sim.run()
    assert hits == ["a", "c"]
    assert sim.now == 90
    with pytest.raises(SimError):
        sim.call_after(-1, hits.append, "d")
