"""Fault-path coverage: corruption, crash/reboot, return-to-sender (§3.2, §4.3).

The paper's error model draws one sharp line: *transient* faults (lost or
corrupted packets, brief outages) are masked by the transport, while
messages for endpoints that stay unreachable past the declare-dead timer
come back to the sender and invoke the undeliverable handler.  These
tests drive both sides of that line through the :class:`FaultInjector`,
and check that injected faults land on the same :class:`TraceBus`
timeline as the transport events they perturb (the injector's old ad-hoc
``self.log`` list stays for back-compat, but the bus is the real record).
"""

from repro.am import build_parallel_vnet
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms, us


def _ordered_cfg(**kw):
    """Single-channel config so arrival order must equal send order."""
    return ClusterConfig(
        num_hosts=4,
        channels_per_pair=1,
        max_consecutive_retrans=1000,
        dead_timeout_ms=60_000.0,
        **kw,
    )


def test_corruption_is_masked_by_crc_and_retransmission():
    cluster = Cluster(_ordered_cfg(seed=7))
    cluster.faults.set_corruption(0.15)
    vnet = cluster.run_process(build_parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got, returned = [], []
    ep0.undeliverable_handler = lambda msg, reason: returned.append(reason)
    nmsgs = 20

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, handler, i)
            yield from ep0.poll(thr, limit=4)

    def receiver(thr):
        while len(got) < nmsgs:
            yield from ep1.poll(thr, limit=8)
            yield from thr.compute(us(5))

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    sim = cluster.sim
    sim.run(until=sim.now + ms(10_000), stop=lambda: len(got) >= nmsgs)

    assert got == list(range(nmsgs))  # masked: exactly once, in order
    assert returned == []
    # the defensive error checking actually caught corrupted packets
    total_crc_drops = sum(n.nic.stats.crc_drops for n in cluster.nodes)
    assert total_crc_drops > 0


def test_dead_endpoint_returns_to_sender_while_loss_stays_masked():
    """Crash one destination mid-stream under packet loss: messages to the
    dead node come back with a reason, messages to the live node all
    arrive — loss never surfaces, death always does."""
    cluster = Cluster(ClusterConfig(num_hosts=4, seed=9))
    cluster.faults.set_loss(0.05)
    vnet = cluster.run_process(build_parallel_vnet(cluster, [0, 1, 2]), "setup")
    ep0, ep1, ep2 = vnet[0], vnet[1], vnet[2]
    sim = cluster.sim
    delivered_live, returned = [], []
    ep0.undeliverable_handler = lambda msg, reason: returned.append(reason)
    nmsgs = 5

    def live_handler(token, i):
        delivered_live.append(i)

    def dead_handler(token, i):
        pass

    def receiver(ep):
        def body(thr):
            while True:
                yield from ep.poll(thr, limit=8)
                yield from thr.compute(us(10))

        return body

    def sender(thr):
        # phase 1: both destinations alive — everything flows
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, dead_handler, i)
            yield from ep0.request(thr, 2, live_handler, i)
            yield from ep0.poll(thr, limit=4)
        while len(delivered_live) < nmsgs:
            yield from ep0.poll(thr, limit=8)
            yield from thr.compute(us(10))
        # phase 2: node 1 dies; its traffic must bounce, node 2's must not
        cluster.crash_node(1)
        for i in range(nmsgs, 2 * nmsgs):
            yield from ep0.request(thr, 1, dead_handler, i)
            yield from ep0.request(thr, 2, live_handler, i)
            yield from ep0.poll(thr, limit=4)
        while len(returned) < nmsgs or len(delivered_live) < 2 * nmsgs:
            yield from ep0.poll(thr, limit=8)
            yield from thr.compute(us(20))

    cluster.node(1).start_process().spawn_thread(receiver(ep1))
    cluster.node(2).start_process().spawn_thread(receiver(ep2))
    snd = cluster.node(0).start_process().spawn_thread(sender)
    sim.run(until=sim.now + ms(5_000), stop=lambda: snd.finished)
    assert snd.finished, "sender did not converge"

    # loss masked: every message to the live node arrived exactly once
    assert sorted(delivered_live) == list(range(2 * nmsgs))
    # death surfaced: every post-crash message to node 1 came back
    assert len(returned) == nmsgs
    assert all(r == "timeout" for r in returned)
    assert ep0.stats.undeliverable == nmsgs
    # and the failed sends' credits were restored
    assert ep0.credits_available(1) == cluster.cfg.user_credits


def test_crash_reboot_cycle_restores_reachability():
    cluster = Cluster(ClusterConfig(num_hosts=4))
    cluster.crash_node(2)
    assert 2 in cluster.network._dead_nics
    cluster.reboot_node(2)
    assert 2 not in cluster.network._dead_nics
    # the injector's legacy log kept both entries (back-compat surface)
    notes = [entry[1] for entry in cluster.faults.log]
    assert notes == ["crash node2", "reboot node2"]


def test_fault_injections_share_the_trace_bus_timeline():
    """Satellite for the injector rework: faults report through the
    TraceBus as ``fault.inject`` events, interleaved in simulated-time
    order with the transport events they disturb."""
    cluster = Cluster(_ordered_cfg(seed=5))
    bus = cluster.enable_tracing()
    vnet = cluster.run_process(build_parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []
    sim = cluster.sim

    cluster.faults.set_loss(0.1)
    # mid-stream: after the first sends hit the wire (~3.3 ms incl. the
    # endpoint page-in), before the paced sender finishes
    t_down, t_up = sim.now + ms(5), sim.now + ms(7)
    cluster.faults.at(t_down, cluster.faults.set_host_link, 1, False)
    cluster.faults.at(t_up, cluster.faults.set_host_link, 1, True)
    nmsgs = 10

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, handler, i)
            yield from ep0.poll(thr, limit=4)
            yield from thr.sleep(us(300))

    def receiver(thr):
        while len(got) < nmsgs:
            yield from ep1.poll(thr, limit=8)
            yield from thr.compute(us(5))

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    sim.run(until=sim.now + ms(10_000), stop=lambda: len(got) >= nmsgs)
    assert got == list(range(nmsgs))

    faults = bus.select("fault.inject")
    assert [f.get("action") for f in faults] == [
        "set_loss", "hostlink", "hostlink",
    ]
    # the hostlink events carry the node they hit
    assert faults[1].node == 1 and faults[2].node == 1
    # the scheduled injections fired at their programmed times...
    assert faults[1].ts == t_down and faults[2].ts == t_up
    # ...inside the transport's timeline, not on some side channel
    pkt_ts = [e.ts for e in bus.select("pkt.")]
    assert min(pkt_ts) < faults[1].ts < max(pkt_ts)
    # one bus, one monotonic record
    all_ts = [e.ts for e in bus.events]
    assert all_ts == sorted(all_ts)
    # the injector's list log still mirrors what hit the bus (back-compat)
    assert len(cluster.faults.log) == len(faults)
