"""Fault-path coverage: corruption, crash/reboot, return-to-sender (§3.2, §4.3).

The paper's error model draws one sharp line: *transient* faults (lost or
corrupted packets, brief outages) are masked by the transport, while
messages for endpoints that stay unreachable past the declare-dead timer
come back to the sender and invoke the undeliverable handler.  These
tests drive both sides of that line through the :class:`FaultInjector`,
and check that injected faults land on the same :class:`TraceBus`
timeline as the transport events they perturb (the injector's old ad-hoc
``self.log`` list stays for back-compat, but the bus is the real record).
"""

from repro.am import parallel_vnet
from repro.cluster import Cluster, ClusterConfig
from repro.sim import ms, us


def _ordered_cfg(**kw):
    """Single-channel config so arrival order must equal send order."""
    return ClusterConfig(
        num_hosts=4,
        channels_per_pair=1,
        max_consecutive_retrans=1000,
        dead_timeout_ms=60_000.0,
        **kw,
    )


def test_corruption_is_masked_by_crc_and_retransmission():
    cluster = Cluster(_ordered_cfg(seed=7))
    cluster.faults.set_corruption(0.15)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got, returned = [], []
    ep0.undeliverable_handler = lambda msg, reason: returned.append(reason)
    nmsgs = 20

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, handler, i)
            yield from ep0.poll(thr, limit=4)

    def receiver(thr):
        while len(got) < nmsgs:
            yield from ep1.poll(thr, limit=8)
            yield from thr.compute(us(5))

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    sim = cluster.sim
    sim.run(until=sim.now + ms(10_000), stop=lambda: len(got) >= nmsgs)

    assert got == list(range(nmsgs))  # masked: exactly once, in order
    assert returned == []
    # the defensive error checking actually caught corrupted packets
    total_crc_drops = sum(n.nic.stats.crc_drops for n in cluster.nodes)
    assert total_crc_drops > 0


def test_dead_endpoint_returns_to_sender_while_loss_stays_masked():
    """Crash one destination mid-stream under packet loss: messages to the
    dead node come back with a reason, messages to the live node all
    arrive — loss never surfaces, death always does."""
    cluster = Cluster(ClusterConfig(num_hosts=4, seed=9))
    cluster.faults.set_loss(0.05)
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1, 2]), "setup")
    ep0, ep1, ep2 = vnet[0], vnet[1], vnet[2]
    sim = cluster.sim
    delivered_live, returned = [], []
    ep0.undeliverable_handler = lambda msg, reason: returned.append(reason)
    nmsgs = 5

    def live_handler(token, i):
        delivered_live.append(i)

    def dead_handler(token, i):
        pass

    def receiver(ep):
        def body(thr):
            while True:
                yield from ep.poll(thr, limit=8)
                yield from thr.compute(us(10))

        return body

    def sender(thr):
        # phase 1: both destinations alive — everything flows
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, dead_handler, i)
            yield from ep0.request(thr, 2, live_handler, i)
            yield from ep0.poll(thr, limit=4)
        while len(delivered_live) < nmsgs:
            yield from ep0.poll(thr, limit=8)
            yield from thr.compute(us(10))
        # phase 2: node 1 dies; its traffic must bounce, node 2's must not
        cluster.crash_node(1)
        for i in range(nmsgs, 2 * nmsgs):
            yield from ep0.request(thr, 1, dead_handler, i)
            yield from ep0.request(thr, 2, live_handler, i)
            yield from ep0.poll(thr, limit=4)
        while len(returned) < nmsgs or len(delivered_live) < 2 * nmsgs:
            yield from ep0.poll(thr, limit=8)
            yield from thr.compute(us(20))

    cluster.node(1).start_process().spawn_thread(receiver(ep1))
    cluster.node(2).start_process().spawn_thread(receiver(ep2))
    snd = cluster.node(0).start_process().spawn_thread(sender)
    sim.run(until=sim.now + ms(5_000), stop=lambda: snd.finished)
    assert snd.finished, "sender did not converge"

    # loss masked: every message to the live node arrived exactly once
    assert sorted(delivered_live) == list(range(2 * nmsgs))
    # death surfaced: every post-crash message to node 1 came back
    assert len(returned) == nmsgs
    assert all(r == "timeout" for r in returned)
    assert ep0.stats.undeliverable == nmsgs
    # and the failed sends' credits were restored
    assert ep0.credits_available(1) == cluster.cfg.user_credits


def test_crash_reboot_cycle_restores_reachability():
    cluster = Cluster(ClusterConfig(num_hosts=4))
    cluster.crash_node(2)
    assert 2 in cluster.network._dead_nics
    cluster.reboot_node(2)
    assert 2 not in cluster.network._dead_nics
    # the injector's legacy log kept both entries (back-compat surface)
    notes = [entry[1] for entry in cluster.faults.log]
    assert notes == ["crash node2", "reboot node2"]


def test_fault_injections_share_the_trace_bus_timeline():
    """Satellite for the injector rework: faults report through the
    TraceBus as ``fault.inject`` events, interleaved in simulated-time
    order with the transport events they disturb."""
    cluster = Cluster(_ordered_cfg(seed=5))
    bus = cluster.enable_tracing()
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 1]), "setup")
    ep0, ep1 = vnet[0], vnet[1]
    got = []
    sim = cluster.sim

    cluster.faults.set_loss(0.1)
    # mid-stream: after the first sends hit the wire (~3.3 ms incl. the
    # endpoint page-in), before the paced sender finishes
    t_down, t_up = sim.now + ms(5), sim.now + ms(7)
    cluster.faults.at(t_down, cluster.faults.set_host_link, 1, False)
    cluster.faults.at(t_up, cluster.faults.set_host_link, 1, True)
    nmsgs = 10

    def handler(token, i):
        got.append(i)

    def sender(thr):
        for i in range(nmsgs):
            yield from ep0.request(thr, 1, handler, i)
            yield from ep0.poll(thr, limit=4)
            yield from thr.sleep(us(300))

    def receiver(thr):
        while len(got) < nmsgs:
            yield from ep1.poll(thr, limit=8)
            yield from thr.compute(us(5))

    cluster.node(1).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    sim.run(until=sim.now + ms(10_000), stop=lambda: len(got) >= nmsgs)
    assert got == list(range(nmsgs))

    faults = bus.select("fault.inject")
    assert [f.get("action") for f in faults] == [
        "set_loss", "hostlink", "hostlink",
    ]
    # the hostlink events carry the node they hit
    assert faults[1].node == 1 and faults[2].node == 1
    # the scheduled injections fired at their programmed times...
    assert faults[1].ts == t_down and faults[2].ts == t_up
    # ...inside the transport's timeline, not on some side channel
    pkt_ts = [e.ts for e in bus.select("pkt.")]
    assert min(pkt_ts) < faults[1].ts < max(pkt_ts)
    # one bus, one monotonic record
    all_ts = [e.ts for e in bus.events]
    assert all_ts == sorted(all_ts)
    # the injector's list log still mirrors what hit the bus (back-compat)
    assert len(cluster.faults.log) == len(faults)


# ---------------------------------------------------------------------------
# Mid-bulk-transfer faults: the staging-DMA window (§5.1) is the risky one —
# a fragment lives between "committed to a channel" and "on the wire" while
# the SBus READ runs, and the channel-reset guard in ``_bulk_send`` must
# neither transmit it after a reset nor lose track of it.
# ---------------------------------------------------------------------------

def test_spine_hotswap_mid_bulk_transfer():
    """Pull half the spines while a cross-leaf bulk stream is in flight:
    the reconfiguration is transient, so every transfer must reassemble
    exactly once and nothing may return to the sender."""
    from repro.chaos import DeliveryChecker

    cluster = Cluster(ClusterConfig(num_hosts=8, seed=11, dead_timeout_ms=60_000.0,
                                    max_consecutive_retrans=4))
    bus = cluster.enable_tracing()
    sim = cluster.sim
    # hosts 0 and 4 sit on different leaves -> all data crosses the spines
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 4]), "setup")
    src, dst = vnet[0], vnet[1]
    payload, ntransfers = 24_576, 8
    done, returned = [], []
    src.undeliverable_handler = lambda msg, reason: returned.append(reason)

    def handler(token, i):
        done.append(i)

    def swapper():
        # wait until the stream is demonstrably mid-flight, then yank
        while len(done) < 2:
            yield sim.timeout(us(50))
        for s in (0, 1):
            cluster.faults.set_spine(s, up=False)
        yield sim.timeout(ms(3))
        for s in (0, 1):
            cluster.faults.set_spine(s, up=True)

    def sender(thr):
        need = -(-payload // cluster.cfg.mtu_bytes)
        for i in range(ntransfers):
            while src.credits_available(1) < need:
                yield from src.poll(thr, limit=8)
                yield from thr.sleep(us(20))
            yield from src.request(thr, 1, handler, i, nbytes=payload)
        while src.credits_available(1) < cluster.cfg.user_credits:
            yield from src.poll(thr, limit=8)
            yield from thr.sleep(us(20))

    def receiver(thr):
        while len(done) < ntransfers:
            yield from dst.poll(thr, limit=8)
            yield from thr.sleep(us(20))

    sim.spawn(swapper())
    cluster.node(4).start_process().spawn_thread(receiver)
    snd = cluster.node(0).start_process().spawn_thread(sender)
    sim.run(until=sim.now + ms(5_000), stop=lambda: snd.finished)
    assert snd.finished, "bulk stream did not survive the hot-swap"

    # masked: every transfer reassembled exactly once, none bounced
    assert sorted(done) == list(range(ntransfers))
    assert returned == []
    # the swap really disturbed the stream (it was not a no-op)
    assert cluster.node(0).nic.stats.retransmissions > 0
    # and the fragment-level timeline satisfies the delivery contract
    assert DeliveryChecker(bus.events).check() == []
    bus.detach()


def _bulk_stream_run(crash_at=None, reboot_at=None, seed=23):
    """One traced cross-leaf bulk stream 0 -> 4; optionally crash/reboot
    the *sender* node at absolute sim times. Returns (events, done)."""
    from repro.am.errors import EndpointFreedError
    from repro.chaos import reset_global_ids

    reset_global_ids()  # msg ids must match between paired runs
    cluster = Cluster(ClusterConfig(num_hosts=8, seed=seed, dead_timeout_ms=8.0))
    bus = cluster.enable_tracing()
    sim = cluster.sim
    vnet = cluster.run_process(parallel_vnet(cluster, [0, 4]), "setup")
    src, dst = vnet[0], vnet[1]
    payload, ntransfers = 24_576, 6
    done = []
    stop = {"flag": False}

    def handler(token, i):
        done.append(i)

    def sender(thr):
        need = -(-payload // cluster.cfg.mtu_bytes)
        try:
            for i in range(ntransfers):
                deadline = sim.now + ms(30)
                while src.credits_available(1) < need:
                    yield from src.poll(thr, limit=8)
                    yield from thr.sleep(us(20))
                    if sim.now >= deadline:
                        return  # credits died with the crash: give up
                yield from src.request(thr, 1, handler, i, nbytes=payload)
        except EndpointFreedError:
            return  # our node rebooted under us: clean exit

    def receiver(thr):
        try:
            while not stop["flag"]:
                yield from dst.poll(thr, limit=8)
                yield from thr.sleep(us(20))
        except EndpointFreedError:
            return

    cluster.node(4).start_process().spawn_thread(receiver)
    cluster.node(0).start_process().spawn_thread(sender)
    if crash_at is not None:
        cluster.faults.at(crash_at, cluster.crash_node, 0)
        cluster.faults.at(reboot_at, cluster.reboot_node, 0)
    sim.run(until=sim.now + ms(60))
    stop["flag"] = True
    sim.run(until=sim.now + ms(1))
    events = list(bus.events)
    bus.detach()
    return events, done


def test_sender_crash_lands_mid_bulk_staging():
    """Crash the sender while a fragment is staging through the SBus READ
    DMA: the ``_bulk_send`` guard must drop the staged packet (it never
    reaches the wire) and the reboot must resolve it — no double
    delivery, no leaked message."""
    from repro.chaos import DeliveryChecker

    cfg = ClusterConfig(num_hosts=8)
    small_max = cfg.small_payload_max_bytes

    # pass 1 (healthy): find an established bulk fragment's pkt.tx — the
    # trace event fires *before* the staging DMA starts, so the wire send
    # happens at least sbus_read_ns(frag) later
    events, done = _bulk_stream_run()
    assert sorted(done) == list(range(6))
    bulk_txs = [e for e in events
                if e.kind == "pkt.tx" and e.node == 0 and e.get("nbytes") > small_max]
    assert len(bulk_txs) >= 3
    probe = bulk_txs[2]
    staging_ns = cfg.sbus_read_ns(probe.get("nbytes"))
    t_crash = probe.ts + staging_ns // 2  # strictly inside the staging DMA

    # pass 2 (same seed => identical prefix): crash mid-staging
    events2, done2 = _bulk_stream_run(crash_at=t_crash, reboot_at=t_crash + 3_000_000)
    prefix = [e for e in events2 if e.ts <= probe.ts and e.kind == "pkt.tx"]
    assert any(e.get("msg") == probe.get("msg") for e in prefix), \
        "determinism broke: paired run diverged before the crash"

    # the staged fragment never hit the wire: no receiver ever saw it
    rx_msgs = [e.get("msg") for e in events2 if e.kind == "pkt.rx"]
    assert probe.get("msg") not in rx_msgs
    # ...and it did not leak: the timeline still resolves every accepted
    # message (the reboot returns the staged one) with no double delivery
    assert DeliveryChecker(events2).check() == []
    # the interrupted stream delivered strictly less, but nothing twice
    assert len(done2) < 6 and len(set(done2)) == len(done2)
