"""The datacenter workload-diversity family (incast / fan-out / streaming).

Each shape must be a first-class citizen of the repo's existing gates:

* registered in the chaos workload registry (lazily, via
  ``make_workload``) and able to survive a generated fault schedule
  with the delivery-contract audit on;
* deterministic: the same (seed, scenario, workload) triple twice gives
  bit-identical chaos digests, and the bench runner's digest is stable
  across runs;
* express-path invariant: the bench observables (counts + simulated
  latencies) match bit for bit with the express path on and off, and
  the perf harness's ``calib_workloads`` scenario passes its
  equivalence oracle.
"""

import pytest

from repro.bench.perf import QUICK, check_express_equivalence
from repro.calib.workloads import (FanoutWorkload, IncastWorkload,
                                   StreamingWorkload, percentile_ns,
                                   run_workload_bench)
from repro.chaos import ScheduleGenerator, run_chaos
from repro.chaos.workloads import make_workload

SHAPES = ("incast", "rpc_fanout", "streaming")

#: reduced shape kwargs so the chaos matrix stays fast
KW = {
    "incast": {"senders": 3, "rounds": 3, "burst": 2},
    "rpc_fanout": {"workers": 3, "rounds": 4},
    "streaming": {"stages": 3, "messages": 8},
}


def _scenario(seed, family="mixed"):
    return ScheduleGenerator(
        seed, num_hosts=8, num_spines=2, num_procs=4, num_eps=4,
        duration_ns=12_000_000, profile="mild",
    ).generate(family)


def test_make_workload_lazily_registers_the_family():
    wl = make_workload("incast", senders=2, rounds=1)
    assert isinstance(wl, IncastWorkload)
    assert isinstance(make_workload("rpc_fanout"), FanoutWorkload)
    assert isinstance(make_workload("streaming"), StreamingWorkload)
    with pytest.raises(ValueError, match="unknown workload"):
        make_workload("nope")


def test_streaming_needs_two_stages():
    with pytest.raises(ValueError):
        StreamingWorkload(stages=1)


@pytest.mark.parametrize("shape", SHAPES)
def test_shape_survives_chaos_with_contract_audit(shape):
    report = run_chaos(_scenario(11), shape, **KW[shape])
    assert report.ok, report.violations


@pytest.mark.parametrize("shape", SHAPES)
def test_shape_chaos_runs_are_bit_identical(shape):
    a = run_chaos(_scenario(23), shape, **KW[shape])
    b = run_chaos(_scenario(23), shape, **KW[shape])
    assert a.digest == b.digest
    assert (a.accepted, a.delivered, a.returned) == (
        b.accepted, b.delivered, b.returned)


@pytest.mark.parametrize("shape", SHAPES)
def test_bench_observables_are_express_invariant(shape):
    on = run_workload_bench(shape, express=True, **KW[shape])
    off = run_workload_bench(shape, express=False, **KW[shape])
    assert on.digest == off.digest
    assert (on.sent, on.handled, on.sim_ns) == (off.sent, off.handled, off.sim_ns)
    assert on.latencies_ns == off.latencies_ns
    # the shapes actually moved traffic
    assert on.handled > 0 and on.ops > 0


def test_bench_runner_is_deterministic():
    a = run_workload_bench("incast", **KW["incast"])
    b = run_workload_bench("incast", **KW["incast"])
    assert a.digest == b.digest


def test_perf_scenario_express_oracle():
    on, off = check_express_equivalence("calib_workloads", QUICK)
    assert on["checks"] == off["checks"]
    assert on["checks"]["handled"] > 0


def test_percentile_nearest_rank():
    vals = [10, 20, 30, 40]
    assert percentile_ns(vals, 50) == 20
    assert percentile_ns(vals, 99) == 40
    assert percentile_ns([], 50) == 0
