"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.myrinet import FatTreeTopology
from repro.nic.channels import RxPeerState, TxChannel, backoff_ns
from repro.sim import Simulator, Store
from repro.sim.rng import RngStreams


# --------------------------------------------------------------- sim kernel
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, fired.append, (d, i))
    sim.run()
    assert fired == sorted(fired, key=lambda t: (t[0], t[1]))
    assert sim.now == max(delays)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=10),
)
def test_store_preserves_fifo_any_capacity(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    out = []

    def producer():
        for x in items:
            yield store.put(x)

    def consumer():
        for _ in items:
            out.append((yield store.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert out == items


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 1000)), min_size=2, max_size=40))
def test_simulation_is_deterministic(ops):
    def run_once():
        sim = Simulator()
        trace = []

        def worker(wid, steps):
            for k, d in enumerate(steps):
                yield sim.timeout(d)
                trace.append((sim.now, wid, k))

        by_worker = {}
        for wid, delay in ops:
            by_worker.setdefault(wid, []).append(delay)
        for wid, steps in by_worker.items():
            sim.spawn(worker(wid, steps))
        sim.run()
        return trace

    assert run_once() == run_once()


# ----------------------------------------------------------------- channels
@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=2**32))
def test_backoff_bounded_and_positive(consecutive, seed):
    cfg = ClusterConfig()
    rng = random.Random(seed)
    ns = backoff_ns(cfg, consecutive, rng)
    assert ns >= 1_000
    # never earlier than the nominal timeout; capped at 2x the max backoff
    cap = max(cfg.retrans_backoff_max_us, cfg.retrans_timeout_us)
    assert ns <= cap * 2_000
    if consecutive == 0:
        assert ns >= cfg.retrans_timeout_us * 1_000


@given(st.lists(st.integers(min_value=1, max_value=2_000), min_size=1, max_size=300))
def test_rx_peer_dedup_never_accepts_twice(msg_ids):
    peer = RxPeerState(0)
    delivered = []
    for mid in msg_ids:
        if not peer.is_duplicate(mid):
            delivered.append(mid)
            peer.record_delivery(mid)
    # within the dedup window, each id delivered at most once
    assert len(delivered) == len(set(delivered))


@given(st.integers(min_value=1, max_value=20))
def test_channel_reset_orphans_everything(n_pending):
    from repro.nic.message import Message, MsgKind

    ch = TxChannel(peer=1, index=0)
    msgs = [
        Message(src_node=0, src_ep=1, dst_node=1, dst_ep=1, key=0, kind=MsgKind.REQUEST)
        for _ in range(n_pending)
    ]
    ch.outstanding = msgs[0]
    for m in msgs[1:]:
        ch.pending.append(m)
    orphans = ch.reset(epoch=2)
    assert len(orphans) == n_pending
    assert ch.idle and not ch.pending
    assert ch.epoch == 2 and ch.seq == 0


# ----------------------------------------------------------------- topology
@given(st.integers(min_value=2, max_value=120), st.integers(min_value=0, max_value=31))
@settings(max_examples=40)
def test_every_pair_routable_on_every_channel(num_hosts, channel):
    cfg = ClusterConfig(num_hosts=num_hosts)
    topo = FatTreeTopology(Simulator(), cfg)
    rng = random.Random(num_hosts * 37 + channel)
    for _ in range(10):
        a, b = rng.randrange(num_hosts), rng.randrange(num_hosts)
        route = topo.route(a, b, channel)
        assert route is not None
        if a == b:
            assert route == []
        else:
            # route alternates host/leaf/spine links and ends at b
            assert route[0] is topo.host_up[a]
            assert route[-1] is topo.host_down[b]
            assert len(route) in (2, 4)


@given(st.integers(min_value=2, max_value=100))
@settings(max_examples=30)
def test_route_static_per_channel(num_hosts):
    """Channels are statically bound to routes (Section 5.3)."""
    topo = FatTreeTopology(Simulator(), ClusterConfig(num_hosts=num_hosts))
    a, b = 0, num_hosts - 1
    r1 = topo.route(a, b, 3)
    r2 = topo.route(a, b, 3)
    assert [l.name for l in r1] == [l.name for l in r2]


# --------------------------------------------------------------------- rng
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible_and_independent(seed, name):
    a = RngStreams(seed).stream(name)
    b = RngStreams(seed).stream(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
    other = RngStreams(seed).stream(name + "_x")
    # different names give (almost surely) different sequences
    assert [RngStreams(seed).stream(name).random() for _ in range(1)] != [other.random() + 1]


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=64))
@settings(max_examples=30)
def test_config_sweep_roundtrip(num_hosts, frames):
    cfg = ClusterConfig(num_hosts=num_hosts, endpoint_frames=min(frames, 128))
    cfg.validate()
    cfg2 = cfg.with_(seed=42)
    assert cfg2.num_hosts == num_hosts
    assert cfg.seed != 42 or cfg2.seed == 42
